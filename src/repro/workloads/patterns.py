"""Memory access-pattern primitives for synthetic workload generation.

Each pattern emits (virtual address, depends-on-previous-load) pairs from a
private virtual-address region.  The patterns span the behavioural axes that
separate the paper's workloads:

* :class:`Stream` — virtually-contiguous streaming; page-cross prefetches
  land exactly where the stream goes next (the *friendly* case: astar,
  cc.road, MIS, vips in Figure 2);
* :class:`PageTiled` — sequential within a page, then a jump to an unrelated
  page; prefetchers confidently predict across the page edge and are wrong
  (the *hostile* case: sphinx3, fotonik3d_s, bc.web, pr.web);
* :class:`Strided` — large constant strides that cross pages frequently;
* :class:`PointerChase` — dependent random accesses (mcf-like; serialises);
* :class:`Gather` — independent random accesses (low prefetchability);
* :class:`GraphCsr` — CSR traversal: an offsets stream interleaved with
  neighbour gathers whose locality is set by the graph flavour (road/web/
  twitter/urand/kron).
"""

from __future__ import annotations

import random

from repro.vm.address import LINE_SHIFT, LINES_PER_PAGE_4K

#: spacing between pattern regions (1 GB of VA each)
REGION_BYTES = 1 << 30


class Pattern:
    """Base: a stateful address generator inside its own VA region."""

    def __init__(self, region: int):
        self.base = region * REGION_BYTES + (1 << 40)

    def next_access(self, rng: random.Random) -> tuple[int, bool, int]:
        """Return (vaddr, depends_on_previous_load, stream_id).

        ``stream_id`` distinguishes logical instruction streams inside one
        pattern (e.g. a CSR traversal's offsets stream vs its neighbour
        gathers) so the workload can give them distinct load PCs.
        """
        raise NotImplementedError

    def _line_to_vaddr(self, line_index: int) -> int:
        return self.base + (line_index << LINE_SHIFT)


class Stream(Pattern):
    """Sequential streaming at a fixed line stride over a large footprint."""

    def __init__(self, region: int, *, stride_lines: int = 1, footprint_pages: int = 4096):
        super().__init__(region)
        self.stride = stride_lines
        self.limit = footprint_pages * LINES_PER_PAGE_4K
        self._pos = 0

    def next_access(self, rng: random.Random) -> tuple[int, bool, int]:
        self._pos = (self._pos + self.stride) % self.limit
        return self._line_to_vaddr(self._pos), False, 0


class Strided(Pattern):
    """Constant large stride (row-major matrix walks); crosses pages often."""

    def __init__(self, region: int, *, stride_lines: int = 80, footprint_pages: int = 8192):
        super().__init__(region)
        self.stride = stride_lines
        self.limit = footprint_pages * LINES_PER_PAGE_4K
        self._pos = 0

    def next_access(self, rng: random.Random) -> tuple[int, bool, int]:
        self._pos = (self._pos + self.stride) % self.limit
        return self._line_to_vaddr(self._pos), False, 0


class PageTiled(Pattern):
    """Sequential bursts inside a page, then a jump to a random page.

    The in-page part trains delta prefetchers; the jump makes their
    page-cross extrapolation wrong nearly every time.
    """

    def __init__(
        self,
        region: int,
        *,
        footprint_pages: int = 4096,
        burst_lines: int = 48,
        start_offset_jitter: int = 8,
    ):
        super().__init__(region)
        self.footprint_pages = footprint_pages
        self.burst_lines = burst_lines
        self.jitter = start_offset_jitter
        self._page = 0
        self._offset = 0
        self._remaining = 0

    def next_access(self, rng: random.Random) -> tuple[int, bool, int]:
        if self._remaining <= 0:
            self._page = rng.randrange(self.footprint_pages)
            # bursts run up to the page edge, so the delta a prefetcher
            # learns in-page extrapolates into the (randomly chosen) next
            # page — the maximally hostile shape
            start = LINES_PER_PAGE_4K - self.burst_lines - rng.randrange(self.jitter + 1)
            self._offset = max(0, start)
            self._remaining = self.burst_lines
        line = self._page * LINES_PER_PAGE_4K + min(self._offset, LINES_PER_PAGE_4K - 1)
        self._offset += 1
        self._remaining -= 1
        return self._line_to_vaddr(line), False, 0


class PointerChase(Pattern):
    """Dependent chain of pseudo-random accesses (linked-list traversal)."""

    def __init__(self, region: int, *, footprint_pages: int = 8192):
        super().__init__(region)
        self.limit = footprint_pages * LINES_PER_PAGE_4K
        self._pos = 1

    def next_access(self, rng: random.Random) -> tuple[int, bool, int]:
        # multiplicative congruential step: deterministic chain, uniform spread
        self._pos = (self._pos * 48271 + 11) % self.limit
        return self._line_to_vaddr(self._pos), True, 0


class Gather(Pattern):
    """Independent uniform-random accesses (sparse gathers)."""

    def __init__(self, region: int, *, footprint_pages: int = 8192):
        super().__init__(region)
        self.limit = footprint_pages * LINES_PER_PAGE_4K

    def next_access(self, rng: random.Random) -> tuple[int, bool, int]:
        return self._line_to_vaddr(rng.randrange(self.limit)), False, 0


class Alternating(Pattern):
    """Same load PCs, phase-dependent page-cross usefulness.

    Alternates between a sequential stream (page-cross friendly) and
    page-tiled bursts over random pages (hostile), *within one pattern*, so
    the two behaviours share load PCs and virtual region.  Program features
    built on PC/VA cannot separate the phases — only the prefetch delta and
    the system state can, which is the regime DRIPPER's feature choice
    (Table II) targets and PPF's does not.
    """

    def __init__(
        self,
        region: int,
        *,
        footprint_pages: int = 4096,
        period: int = 2_000,
        burst_lines: int = 48,
        stream_stride: int = 40,
    ):
        super().__init__(region)
        self.footprint_pages = footprint_pages
        self.period = period
        self.burst_lines = burst_lines
        #: large stride in the friendly phase -> its deltas are far from the
        #: hostile phase's small in-burst deltas, so a per-delta weight can
        #: separate what a per-PC weight cannot
        self.stream_stride = stream_stride
        self._count = 0
        self._pos = 0
        self._page = 0
        self._offset = 0
        self._remaining = 0

    def next_access(self, rng: random.Random) -> tuple[int, bool, int]:
        self._count += 1
        limit = self.footprint_pages * LINES_PER_PAGE_4K
        if (self._count // self.period) % 2 == 0:
            # friendly phase: large-stride stream
            self._pos = (self._pos + self.stream_stride) % limit
            return self._line_to_vaddr(self._pos), False, 0
        # hostile phase: page-edge bursts over random pages
        if self._remaining <= 0:
            self._page = rng.randrange(self.footprint_pages)
            self._offset = max(0, LINES_PER_PAGE_4K - self.burst_lines)
            self._remaining = self.burst_lines
        line = self._page * LINES_PER_PAGE_4K + min(self._offset, LINES_PER_PAGE_4K - 1)
        self._offset += 1
        self._remaining -= 1
        return self._line_to_vaddr(line), False, 0


class GraphCsr(Pattern):
    """CSR graph traversal: offsets stream + neighbour gathers.

    ``locality`` sets how far neighbour ids stray from the current node:
    road networks keep neighbours close (page-cross prefetching of the
    property array works), web/social graphs scatter them (it doesn't).
    """

    FLAVOURS = {
        # (locality_lines, zipf_hub_fraction, mean_degree, sequential_offsets)
        # road/urand: topological node order ~= memory order, the offsets
        # stream walks pages in order (page-cross friendly).  web/twitter/
        # kron: frontier-driven traversal visits offset pages out of order
        # (sequential inside a page, random page next -> hostile).
        "road": (96, 0.0, 3, True),
        "web": (0, 0.35, 8, False),
        "twitter": (0, 0.50, 12, False),
        "urand": (0, 0.0, 6, True),
        "kron": (0, 0.45, 10, False),
    }

    def __init__(self, region: int, *, flavour: str = "road", nodes_pages: int = 4096):
        super().__init__(region)
        if flavour not in self.FLAVOURS:
            raise KeyError(f"unknown graph flavour {flavour!r}; known: {sorted(self.FLAVOURS)}")
        self.flavour = flavour
        (self.locality, self.hub_fraction, self.mean_degree,
         self.sequential_offsets) = self.FLAVOURS[flavour]
        self.prop_lines = nodes_pages * LINES_PER_PAGE_4K
        #: the offsets/edges arrays live in the upper half of the region
        self._edge_base = self.prop_lines * 2
        self._node_line = 0
        self._burst = 0

    def next_access(self, rng: random.Random) -> tuple[int, bool, int]:
        if self._burst <= 0:
            # advance the offsets/edges stream by one line (stream 0)
            if self.sequential_offsets or self._node_line % LINES_PER_PAGE_4K != 0:
                self._node_line = (self._node_line + 1) % self.prop_lines
            else:
                # frontier jump: continue the offsets walk in a random page
                page = rng.randrange(self.prop_lines // LINES_PER_PAGE_4K)
                self._node_line = page * LINES_PER_PAGE_4K + 1
            self._burst = max(1, int(rng.expovariate(1.0 / self.mean_degree)))
            return self._line_to_vaddr(self._edge_base + self._node_line), False, 0
        self._burst -= 1
        if self.hub_fraction and rng.random() < self.hub_fraction:
            # hub access: hot set stays cache-resident
            neighbour = rng.randrange(256)
        elif self.locality:
            span = 2 * self.locality + 1
            neighbour = (self._node_line + rng.randrange(span) - self.locality) % self.prop_lines
        else:
            neighbour = rng.randrange(self.prop_lines)
        return self._line_to_vaddr(neighbour), False, 1
