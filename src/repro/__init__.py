"""repro: reproduction of "To Cross, or Not to Cross Pages for Prefetching?"
(HPCA 2025) — the MOKA page-cross-filter framework, the DRIPPER prototype,
and the trace-driven CPU / memory / virtual-memory simulator they are
evaluated on.

Quickstart::

    from repro import SimConfig, simulate, make_dripper, by_name

    workload = by_name("astar")
    config = SimConfig(prefetcher="berti", policy_factory=lambda: make_dripper("berti"))
    result = simulate(workload, config)
    print(result.ipc, result.pgc_accuracy)
"""

from repro.core import (
    DiscardPgc,
    DiscardPtw,
    FeatureContext,
    PageCrossPolicy,
    PerceptronFilter,
    PermitPgc,
    PrefetchRequest,
    make_dripper,
    make_dripper_sf,
    make_ppf,
    make_ppf_dthr,
)
from repro.cpu import MixResult, SimConfig, SimResult, simulate, simulate_mix
from repro.obs import Observability, Probe, RunJournal, TimelineRecorder
from repro.params import DEFAULT_PARAMS, SystemParams
from repro.workloads import by_name, seen_workloads, unseen_workloads

__version__ = "1.0.0"

__all__ = [
    "DiscardPgc",
    "DiscardPtw",
    "FeatureContext",
    "PageCrossPolicy",
    "PerceptronFilter",
    "PermitPgc",
    "PrefetchRequest",
    "make_dripper",
    "make_dripper_sf",
    "make_ppf",
    "make_ppf_dthr",
    "MixResult",
    "SimConfig",
    "SimResult",
    "simulate",
    "simulate_mix",
    "Observability",
    "Probe",
    "RunJournal",
    "TimelineRecorder",
    "DEFAULT_PARAMS",
    "SystemParams",
    "by_name",
    "seen_workloads",
    "unseen_workloads",
    "__version__",
]
