"""Common interface for L1D prefetchers.

L1D prefetchers operate in the *virtual* address space (first-level caches
are VIPT, Section II-A).  On every demand L1D access the simulator calls
:meth:`on_access`; the prefetcher returns zero or more
:class:`~repro.core.context.PrefetchRequest` candidates.  Whether a candidate
crosses a page — and what happens then — is the page-cross policy's business,
not the prefetcher's: all prefetchers here generate candidates without
clamping to page boundaries.
"""

from __future__ import annotations

from repro.core.context import PrefetchRequest
from repro.vm.address import LINE_SHIFT


class L1dPrefetcher:
    """Abstract L1D prefetcher."""

    name = "none"

    def __init__(self, *, extra_storage_bytes: int = 0):
        #: ISO-storage knob: DRIPPER's budget handed to the prefetcher instead
        self.extra_storage_bytes = extra_storage_bytes

    def on_access(self, pc: int, vaddr: int, hit: bool, t: float) -> list[PrefetchRequest]:
        """Observe a demand access and return prefetch candidates."""
        raise NotImplementedError

    def on_fill(self, vaddr: int, latency: float) -> None:
        """Optional hook: a demand L1D miss completed with this latency
        (the timely-Berti variant uses it to calibrate its horizon)."""

    @staticmethod
    def _request(target_line: int, pc: int, trigger_line: int, meta: int = 0) -> PrefetchRequest:
        """Build a request; `meta` carries the degree index within a burst
        (consumed only by specialized features, see repro.core.specialized)."""
        return PrefetchRequest(target_line << LINE_SHIFT, pc, target_line - trigger_line, meta)


class NoPrefetcher(L1dPrefetcher):
    """Disabled prefetcher (baseline plumbing)."""

    name = "none"

    def on_access(self, pc: int, vaddr: int, hit: bool, t: float) -> list[PrefetchRequest]:
        return []
