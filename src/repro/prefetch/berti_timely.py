"""Berti variant with measured-latency timeliness (closer to the original).

The default :class:`~repro.prefetch.berti.BertiPrefetcher` approximates
timeliness with a fixed access-count lookback.  This variant follows the
MICRO'22 design more closely:

* the engine reports each demand fill's *measured latency* via
  :meth:`on_fill`;
* a delta is counted as timely only if the anchoring access happened at
  least that long ago (per-IP moving average of observed latencies), i.e. a
  prefetch issued at the anchor would have completed by now;
* deltas carry a coverage counter over a fixed observation window and are
  promoted at Berti's 0.35 high-confidence bar.

It is interchangeable with the default Berti (same `L1dPrefetcher`
interface, registered as ``berti-timely``); the ablation in
``benchmarks/test_ablation_berti_variants.py`` compares the two.
"""

from __future__ import annotations

from repro.core.context import PrefetchRequest
from repro.prefetch.base import L1dPrefetcher
from repro.vm.address import LINE_SHIFT


class _TimelyEntry:
    __slots__ = ("history", "deltas", "opportunities", "best", "avg_latency")

    def __init__(self) -> None:
        self.history: list[tuple[int, float]] = []  # (line, time), newest last
        self.deltas: dict[int, int] = {}
        self.opportunities = 0
        self.best: list[int] = []
        #: per-IP moving average of observed fill latencies
        self.avg_latency = 120.0


class BertiTimelyPrefetcher(L1dPrefetcher):
    """Berti with measured-latency timeliness."""

    name = "berti-timely"

    def __init__(
        self,
        *,
        ip_table_entries: int = 64,
        history_entries: int = 16,
        max_delta: int = 192,
        high_confidence: float = 0.35,
        max_best_deltas: int = 3,
        window: int = 16,
        latency_smoothing: float = 0.25,
        extra_storage_bytes: int = 0,
    ):
        super().__init__(extra_storage_bytes=extra_storage_bytes)
        self.ip_table_entries = ip_table_entries + extra_storage_bytes // 64
        self.history_entries = history_entries
        self.max_delta = max_delta
        self.high_confidence = high_confidence
        self.max_best_deltas = max_best_deltas
        self.window = window
        self.latency_smoothing = latency_smoothing
        self._table: dict[int, _TimelyEntry] = {}
        self._lru: dict[int, int] = {}
        self._tick = 0
        self._last_pc = 0

    def _entry(self, pc: int) -> _TimelyEntry:
        self._tick += 1
        entry = self._table.get(pc)
        if entry is None:
            if len(self._table) >= self.ip_table_entries:
                victim = min(self._lru, key=self._lru.get)
                del self._table[victim]
                del self._lru[victim]
            entry = _TimelyEntry()
            self._table[pc] = entry
        self._lru[pc] = self._tick
        return entry

    def on_fill(self, vaddr: int, latency: float) -> None:
        """Feed a measured demand-fill latency (engine hook)."""
        entry = self._table.get(self._last_pc)
        if entry is not None and latency > 0:
            s = self.latency_smoothing
            entry.avg_latency = (1 - s) * entry.avg_latency + s * latency

    def on_access(self, pc: int, vaddr: int, hit: bool, t: float) -> list[PrefetchRequest]:
        """Observe the access against the measured-latency horizon."""
        line = vaddr >> LINE_SHIFT
        entry = self._entry(pc)
        self._last_pc = pc
        entry.opportunities += 1
        horizon = entry.avg_latency
        for hline, htime in entry.history:
            if t - htime >= horizon:
                delta = line - hline
                if delta != 0 and -self.max_delta <= delta <= self.max_delta:
                    entry.deltas[delta] = entry.deltas.get(delta, 0) + 1
        if entry.opportunities % self.window == 0 and entry.deltas:
            bar = self.high_confidence * self.window
            confident = [d for d, n in entry.deltas.items() if n >= bar]
            confident.sort(key=abs, reverse=True)
            entry.best = confident[: self.max_best_deltas]
            entry.deltas = {d: n // 2 for d, n in entry.deltas.items() if n > 1}
        entry.history.append((line, t))
        if len(entry.history) > self.history_entries:
            entry.history.pop(0)
        return [
            self._request(line + delta, pc, line, meta=rank)
            for rank, delta in enumerate(entry.best, start=1)
        ]
