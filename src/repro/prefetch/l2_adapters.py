"""L2C prefetcher adapters for the Section V-B7 study (Figure 17).

L2 prefetchers are PIPT-side: they see physical line addresses (no PC) and
must stay within the physical 4KB page.  SPP is purpose-built for this; BOP
and IPCP are adapted by driving their L1-style engines with physical lines
and a constant PC, then clamping emitted targets to the page — the same
conversion ChampSim applies when running these prefetchers at L2.
"""

from __future__ import annotations

from repro.prefetch.base import L1dPrefetcher
from repro.prefetch.bop import BopPrefetcher
from repro.prefetch.ipcp import IpcpPrefetcher
from repro.prefetch.spp import SppPrefetcher
from repro.vm.address import LINE_SHIFT, LINES_PER_PAGE_4K


class L2Prefetcher:
    """Interface: physical line in, list of in-page physical target lines out."""

    name = "no-l2"

    def on_access(self, paddr_line: int, t: float) -> list[int]:
        """Observe an L2 access; return in-page physical target lines."""
        return []


class NoL2Prefetcher(L2Prefetcher):
    """Baseline: no L2 prefetching (the paper's default, per ARM N/V-series)."""


class SppL2(L2Prefetcher):
    """SPP behind the L2Prefetcher interface."""

    name = "spp"

    def __init__(self) -> None:
        self._engine = SppPrefetcher()

    def on_access(self, paddr_line: int, t: float) -> list[int]:
        """Delegate to the SPP engine (already in-page by construction)."""
        return self._engine.on_access(paddr_line, t)


class _AdaptedL2(L2Prefetcher):
    """Clamp an L1-style engine's requests to the physical page."""

    def __init__(self, engine: L1dPrefetcher):
        self._engine = engine

    def on_access(self, paddr_line: int, t: float) -> list[int]:
        """Drive the wrapped engine and clamp targets to the physical page."""
        page = paddr_line // LINES_PER_PAGE_4K
        requests = self._engine.on_access(0, paddr_line << LINE_SHIFT, True, t)
        targets = []
        for req in requests:
            target_line = req.vaddr >> LINE_SHIFT
            if target_line // LINES_PER_PAGE_4K == page:
                targets.append(target_line)
        return targets


class BopL2(_AdaptedL2):
    """BOP adapted to the L2 (physical, page-clamped)."""

    name = "bop"

    def __init__(self) -> None:
        super().__init__(BopPrefetcher(degree=2))


class IpcpL2(_AdaptedL2):
    """IPCP adapted to the L2 (physical, page-clamped, no PC)."""

    name = "ipcp"

    def __init__(self) -> None:
        super().__init__(IpcpPrefetcher())


def make_l2_prefetcher(name: str) -> L2Prefetcher:
    """Factory for the Figure 17 L2 prefetcher set."""
    key = name.lower()
    table = {"none": NoL2Prefetcher, "no-l2": NoL2Prefetcher, "spp": SppL2, "bop": BopL2, "ipcp": IpcpL2}
    if key not in table:
        raise KeyError(f"unknown L2 prefetcher {name!r}; known: {sorted(table)}")
    return table[key]()
