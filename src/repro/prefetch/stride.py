"""Baseline L1D prefetchers: per-IP stride and sequential next-line.

Not part of the paper's evaluated set (Berti/IPCP/BOP), but standard
reference points: the stride prefetcher is the classic Chen-Baer design and
the next-line prefetcher is the simplest possible page-cross generator
(every 64th prefetch crosses).  Both are useful for calibrating filters and
in examples/ablations.
"""

from __future__ import annotations

from repro.core.context import PrefetchRequest
from repro.prefetch.base import L1dPrefetcher
from repro.vm.address import LINE_SHIFT


class StridePrefetcher(L1dPrefetcher):
    """Per-IP reference-prediction-table stride prefetcher (Chen & Baer)."""

    name = "stride"

    def __init__(self, *, table_entries: int = 256, degree: int = 2, extra_storage_bytes: int = 0):
        super().__init__(extra_storage_bytes=extra_storage_bytes)
        self.table_entries = table_entries + extra_storage_bytes // 8
        self.degree = degree
        # pc -> [last_line, stride, confidence (0..3), lru]
        self._table: dict[int, list[int]] = {}
        self._tick = 0

    def on_access(self, pc: int, vaddr: int, hit: bool, t: float) -> list[PrefetchRequest]:
        """Track the per-IP stride; emit once confidence reaches 2."""
        line = vaddr >> LINE_SHIFT
        self._tick += 1
        entry = self._table.get(pc)
        if entry is None:
            if len(self._table) >= self.table_entries:
                victim = min(self._table, key=lambda k: self._table[k][3])
                del self._table[victim]
            self._table[pc] = [line, 0, 0, self._tick]
            return []
        last, stride, confidence, _ = entry
        delta = line - last
        if delta != 0:
            if delta == stride:
                confidence = min(confidence + 1, 3)
            else:
                confidence = max(confidence - 1, 0)
                if confidence == 0:
                    stride = delta
        entry[0] = line
        entry[1] = stride
        entry[2] = confidence
        entry[3] = self._tick
        if confidence < 2 or stride == 0:
            return []
        return [
            self._request(line + stride * k, pc, line, meta=k)
            for k in range(1, self.degree + 1)
        ]


class NextLineDataPrefetcher(L1dPrefetcher):
    """Prefetch the next `degree` sequential lines on every access."""

    name = "next-line"

    def __init__(self, *, degree: int = 1, extra_storage_bytes: int = 0):
        super().__init__(extra_storage_bytes=extra_storage_bytes)
        self.degree = degree

    def on_access(self, pc: int, vaddr: int, hit: bool, t: float) -> list[PrefetchRequest]:
        """Unconditionally emit the next `degree` lines."""
        line = vaddr >> LINE_SHIFT
        return [self._request(line + k, pc, line, meta=k) for k in range(1, self.degree + 1)]
