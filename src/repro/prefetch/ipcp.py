"""IPCP: Instruction Pointer Classifier-based Prefetching (ISCA'20).

Classifies each load IP into one of three classes and prefetches accordingly:

* **CS** (constant stride): stride confirmed by a 2-bit confidence counter;
  prefetch ``degree`` strides ahead.
* **CPLX** (complex): a signature of recent per-IP deltas indexes a delta
  prediction table; prefetch along the predicted delta chain.
* **GS** (global stream): a global monotonic-direction detector; prefetch the
  next lines in the stream direction.

As in the original, classes are prioritised CS > CPLX > GS, and prefetches
are emitted without regard to page boundaries (the page-cross policy decides
their fate).
"""

from __future__ import annotations

from repro.core.context import PrefetchRequest
from repro.prefetch.base import L1dPrefetcher
from repro.vm.address import LINE_SHIFT

_SIG_MASK = 0xFFF


class _IpcpEntry:
    __slots__ = ("last_line", "stride", "conf", "signature", "valid")

    def __init__(self) -> None:
        self.last_line = 0
        self.stride = 0
        self.conf = 0
        self.signature = 0
        self.valid = False


class IpcpPrefetcher(L1dPrefetcher):
    """IPCP L1D prefetcher."""

    name = "ipcp"

    def __init__(
        self,
        *,
        ip_table_entries: int = 128,
        cplx_table_entries: int = 1024,
        cs_degree: int = 3,
        cplx_depth: int = 2,
        gs_degree: int = 4,
        extra_storage_bytes: int = 0,
    ):
        super().__init__(extra_storage_bytes=extra_storage_bytes)
        # ISO-storage scaling: each IP entry ~8B, CPLX entry ~2B
        self.ip_table_entries = ip_table_entries + extra_storage_bytes // 16
        self.cplx_table_entries = cplx_table_entries + (extra_storage_bytes // 4)
        self.cs_degree = cs_degree
        self.cplx_depth = cplx_depth
        self.gs_degree = gs_degree
        self._table: dict[int, _IpcpEntry] = {}
        self._lru: dict[int, int] = {}
        self._tick = 0
        # CPLX delta prediction: signature -> [delta, confidence]
        self._cplx: dict[int, list[int]] = {}
        # global stream detector
        self._gs_last_line = 0
        self._gs_dir = 0
        self._gs_conf = 0

    def _entry(self, pc: int) -> _IpcpEntry:
        self._tick += 1
        entry = self._table.get(pc)
        if entry is None:
            if len(self._table) >= self.ip_table_entries:
                victim = min(self._lru, key=self._lru.get)
                del self._table[victim]
                del self._lru[victim]
            entry = _IpcpEntry()
            self._table[pc] = entry
        self._lru[pc] = self._tick
        return entry

    def _train_cplx(self, signature: int, delta: int) -> None:
        slot = self._cplx.get(signature)
        if slot is None:
            if len(self._cplx) >= self.cplx_table_entries:
                self._cplx.pop(next(iter(self._cplx)))
            self._cplx[signature] = [delta, 1]
        elif slot[0] == delta:
            slot[1] = min(slot[1] + 1, 3)
        else:
            slot[1] -= 1
            if slot[1] <= 0:
                slot[0] = delta
                slot[1] = 1

    def _update_gs(self, line: int) -> None:
        delta = line - self._gs_last_line
        if delta in (1, 2) and self._gs_dir >= 0:
            self._gs_dir = 1
            self._gs_conf = min(self._gs_conf + 1, 7)
        elif delta in (-1, -2) and self._gs_dir <= 0:
            self._gs_dir = -1
            self._gs_conf = min(self._gs_conf + 1, 7)
        else:
            self._gs_conf = max(self._gs_conf - 1, 0)
            if self._gs_conf == 0:
                self._gs_dir = 0
        self._gs_last_line = line

    def on_access(self, pc: int, vaddr: int, hit: bool, t: float) -> list[PrefetchRequest]:
        """Classify the IP (CS > CPLX > GS) and emit accordingly."""
        line = vaddr >> LINE_SHIFT
        entry = self._entry(pc)
        self._update_gs(line)
        requests: list[PrefetchRequest] = []
        if entry.valid:
            delta = line - entry.last_line
            if delta != 0:
                # stride confidence
                if delta == entry.stride:
                    entry.conf = min(entry.conf + 1, 3)
                else:
                    entry.conf = max(entry.conf - 1, 0)
                    if entry.conf == 0:
                        entry.stride = delta
                # CPLX training against the previous signature
                self._train_cplx(entry.signature, delta)
                entry.signature = ((entry.signature << 3) ^ (delta & 0x3F)) & _SIG_MASK
        entry.last_line = line
        entry.valid = True

        if entry.conf >= 2 and entry.stride != 0:
            # CS class
            for k in range(1, self.cs_degree + 1):
                requests.append(self._request(line + entry.stride * k, pc, line, meta=k))
            return requests
        # CPLX class: follow the predicted delta chain
        sig = entry.signature
        target = line
        for depth in range(1, self.cplx_depth + 1):
            slot = self._cplx.get(sig)
            if slot is None or slot[1] < 2:
                break
            target += slot[0]
            requests.append(self._request(target, pc, line, meta=depth))
            sig = ((sig << 3) ^ (slot[0] & 0x3F)) & _SIG_MASK
        if requests:
            return requests
        # GS class
        if self._gs_conf >= 4 and self._gs_dir != 0:
            for k in range(1, self.gs_degree + 1):
                requests.append(self._request(line + self._gs_dir * k, pc, line, meta=k))
        return requests
