"""Berti: accurate local-delta prefetcher (Navarro-Torres et al., MICRO'22).

Faithful-in-spirit reimplementation: per-IP access history with timestamps,
from which Berti learns the local deltas that would have been *timely* (the
earlier access happened long enough ago for the prefetch to have completed)
and issues the deltas whose observed coverage clears a confidence bar.

Simplifications vs the original: fixed timeliness horizon instead of the
measured per-fill latency, and aging by periodic halving instead of Berti's
windowed counters.  Both preserve the property the paper leans on: Berti
issues *large, confident* deltas, so near page edges it naturally produces
page-cross candidates.
"""

from __future__ import annotations

from repro.core.context import PrefetchRequest
from repro.prefetch.base import L1dPrefetcher
from repro.vm.address import LINE_SHIFT


class _IpEntry:
    __slots__ = ("history", "deltas", "accesses", "best")

    def __init__(self) -> None:
        #: accessed lines, newest last (timeliness is judged by history
        #: *depth*, not wall time — see min_lookback — so no timestamps)
        self.history: list[int] = []
        self.deltas: dict[int, int] = {}
        self.accesses = 0
        self.best: list[int] = []


class BertiPrefetcher(L1dPrefetcher):
    """Berti L1D prefetcher."""

    name = "berti"

    def __init__(
        self,
        *,
        ip_table_entries: int = 64,
        history_entries: int = 16,
        min_lookback: int = 4,
        max_delta: int = 192,
        coverage_threshold: float = 0.30,
        max_best_deltas: int = 3,
        refresh_interval: int = 16,
        extra_storage_bytes: int = 0,
    ):
        super().__init__(extra_storage_bytes=extra_storage_bytes)
        # ISO-storage scaling: each IP entry costs ~64B (history + counters)
        self.ip_table_entries = ip_table_entries + extra_storage_bytes // 64
        self.history_entries = history_entries
        #: a delta is "timely" when its history anchor is at least this many
        #: same-IP accesses old (count-based proxy for Berti's fill-latency
        #: test; robust to the clustered dispatch times of an OoO window)
        self.min_lookback = min_lookback
        self.max_delta = max_delta
        self.coverage_threshold = coverage_threshold
        self.max_best_deltas = max_best_deltas
        self.refresh_interval = refresh_interval
        self._table: dict[int, _IpEntry] = {}
        self._lru: dict[int, int] = {}
        self._tick = 0

    def _entry(self, pc: int) -> _IpEntry:
        # self._lru is kept in touch order (touching a pc reinserts its key),
        # so the LRU victim is always the first key — no min() scan
        self._tick += 1
        lru = self._lru
        entry = self._table.get(pc)
        if entry is None:
            if len(self._table) >= self.ip_table_entries:
                victim = next(iter(lru))
                del self._table[victim]
                del lru[victim]
            entry = _IpEntry()
            self._table[pc] = entry
        else:
            del lru[pc]
        lru[pc] = self._tick
        return entry

    def on_access(self, pc: int, vaddr: int, hit: bool, t: float) -> list[PrefetchRequest]:
        """Observe the access, learn timely deltas, emit the confident set."""
        line = vaddr >> LINE_SHIFT
        entry = self._entry(pc)
        entry.accesses += 1
        # learn timely deltas against the per-IP history: only anchors at
        # least min_lookback accesses old count (prefetching closer than
        # that would arrive too late to matter)
        history = entry.history
        eligible = len(history) - self.min_lookback + 1
        if eligible > 0:
            deltas = entry.deltas
            deltas_get = deltas.get
            max_delta = self.max_delta
            for anchor in history[:eligible]:
                delta = line - anchor
                if delta != 0 and -max_delta <= delta <= max_delta:
                    deltas[delta] = deltas_get(delta, 0) + 1
        # periodically refresh the confident-delta set and age counters
        if entry.accesses % self.refresh_interval == 0 and entry.deltas:
            bar = self.coverage_threshold * self.refresh_interval
            confident = [d for d, n in entry.deltas.items() if n >= bar]
            # among confident deltas prefer the farthest (most timely)
            confident.sort(key=abs, reverse=True)
            entry.best = confident[: self.max_best_deltas]
            entry.deltas = {d: n // 2 for d, n in entry.deltas.items() if n > 1}
        history.append(line)
        if len(history) > self.history_entries:
            history.pop(0)
        best = entry.best
        if not best:
            return []
        # inlined _request: target (line+delta) << LINE_SHIFT, trigger delta
        shift = LINE_SHIFT
        return [
            PrefetchRequest((line + delta) << shift, pc, delta, rank)
            for rank, delta in enumerate(best, start=1)
        ]
