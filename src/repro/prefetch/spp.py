"""SPP: Signature Path Prefetcher (Kim et al., MICRO'16) — L2C variant.

Operates on physical addresses (L2 is PIPT) and prefetches only within the
physical 4KB page, as lower-level prefetchers must (Section II-A2).  Per-page
signatures compress the recent delta history; a pattern table maps signatures
to (delta, confidence); prediction walks the signature path with lookahead
while the cumulative confidence stays above a threshold.
"""

from __future__ import annotations

from repro.vm.address import LINES_PER_PAGE_4K

_SIG_MASK = 0xFFF


class SppPrefetcher:
    """SPP at the L2C (physical addresses, in-page only)."""

    name = "spp"

    def __init__(
        self,
        *,
        signature_table_entries: int = 256,
        pattern_table_entries: int = 2048,
        lookahead_depth: int = 3,
        confidence_threshold: float = 0.4,
    ):
        self.signature_table_entries = signature_table_entries
        self.pattern_table_entries = pattern_table_entries
        self.lookahead_depth = lookahead_depth
        self.confidence_threshold = confidence_threshold
        # page -> [signature, last_offset, lru]
        self._pages: dict[int, list[int]] = {}
        # signature -> {delta: count}
        self._patterns: dict[int, dict[int, int]] = {}
        self._tick = 0

    def _page_entry(self, page: int) -> list[int]:
        self._tick += 1
        entry = self._pages.get(page)
        if entry is None:
            if len(self._pages) >= self.signature_table_entries:
                victim = min(self._pages, key=lambda p: self._pages[p][2])
                del self._pages[victim]
            entry = [0, -1, self._tick]
            self._pages[page] = entry
        else:
            entry[2] = self._tick
        return entry

    def _train(self, signature: int, delta: int) -> None:
        counts = self._patterns.get(signature)
        if counts is None:
            if len(self._patterns) >= self.pattern_table_entries:
                self._patterns.pop(next(iter(self._patterns)))
            counts = {}
            self._patterns[signature] = counts
        counts[delta] = counts.get(delta, 0) + 1
        if counts[delta] >= 64:  # age
            for d in counts:
                counts[d] //= 2

    def _predict(self, signature: int) -> tuple[int, float] | None:
        counts = self._patterns.get(signature)
        if not counts:
            return None
        total = sum(counts.values())
        delta, count = max(counts.items(), key=lambda kv: kv[1])
        return delta, count / total

    def on_access(self, paddr_line: int, t: float) -> list[int]:
        """Observe an L2 access; return in-page physical prefetch target lines."""
        page = paddr_line // LINES_PER_PAGE_4K
        offset = paddr_line % LINES_PER_PAGE_4K
        entry = self._page_entry(page)
        signature, last_offset = entry[0], entry[1]
        if last_offset >= 0:
            delta = offset - last_offset
            if delta != 0:
                self._train(signature, delta)
                signature = ((signature << 3) ^ (delta & 0x3F)) & _SIG_MASK
        entry[0] = signature
        entry[1] = offset

        targets: list[int] = []
        confidence = 1.0
        sig = signature
        cur = offset
        for _ in range(self.lookahead_depth):
            pred = self._predict(sig)
            if pred is None:
                break
            delta, conf = pred
            confidence *= conf
            if confidence < self.confidence_threshold:
                break
            cur += delta
            if not 0 <= cur < LINES_PER_PAGE_4K:
                break  # in-page only
            targets.append(page * LINES_PER_PAGE_4K + cur)
            sig = ((sig << 3) ^ (delta & 0x3F)) & _SIG_MASK
        return targets
