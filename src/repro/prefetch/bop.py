"""BOP: Best-Offset Prefetching (Michaud, HPCA'16).

A global (IP-agnostic) prefetcher that learns the single best prefetch
offset.  Recent request base addresses live in the RR table; a learning
phase scores each candidate offset O by checking, on an access to X, whether
X - O was recently requested (meaning a prefetch at offset O would have been
issued in time).  The phase ends when an offset saturates its score or after
a fixed number of rounds; the winner becomes the prefetch offset if its
score clears ``bad_score``.
"""

from __future__ import annotations

from repro.core.context import PrefetchRequest
from repro.prefetch.base import L1dPrefetcher
from repro.vm.address import LINE_SHIFT

#: Michaud's offset list: products 2^i * 3^j * 5^k up to 128, plus negatives
_POS = [1, 2, 3, 4, 5, 6, 8, 9, 10, 12, 15, 16, 18, 20, 24, 25, 27, 30, 32, 36, 40, 45, 48, 50, 54, 60, 64, 72, 75, 80, 81, 90, 96, 100, 108, 120, 125, 128]
DEFAULT_OFFSETS: tuple[int, ...] = tuple(_POS + [-o for o in (1, 2, 3, 4, 6, 8)])


class BopPrefetcher(L1dPrefetcher):
    """BOP prefetcher (usable at L1D or, page-clamped, at L2)."""

    name = "bop"

    def __init__(
        self,
        *,
        rr_entries: int = 64,
        offsets: tuple[int, ...] = DEFAULT_OFFSETS,
        score_max: int = 31,
        round_max: int = 20,
        bad_score: int = 4,
        degree: int = 1,
        extra_storage_bytes: int = 0,
    ):
        super().__init__(extra_storage_bytes=extra_storage_bytes)
        # ISO-storage scaling: RR entries are ~4B but BOP is sensitive to RR
        # reach, so the extra budget is applied conservatively
        rr = rr_entries + extra_storage_bytes // 16
        self.rr_entries = 1 << (rr.bit_length() - 1)  # keep power of two
        self.offsets = offsets
        self.score_max = score_max
        self.round_max = round_max
        self.bad_score = bad_score
        self.degree = degree
        self._rr = [0] * self.rr_entries
        self._scores = [0] * len(offsets)
        self._test_index = 0
        self._round = 0
        self.best_offset = 0  # 0 -> prefetching off

    def _rr_index(self, line: int) -> int:
        return (line ^ (line >> 8)) & (self.rr_entries - 1)

    def _rr_hit(self, line: int) -> bool:
        return self._rr[self._rr_index(line)] == line

    def _rr_insert(self, line: int) -> None:
        self._rr[self._rr_index(line)] = line

    def _end_phase(self, winner: int | None = None) -> None:
        if winner is not None:
            # an offset saturated its score: select it unconditionally
            self.best_offset = winner
        else:
            best_score = max(self._scores)
            if best_score > self.bad_score:
                self.best_offset = self.offsets[self._scores.index(best_score)]
            else:
                self.best_offset = 0
        self._scores = [0] * len(self.offsets)
        self._test_index = 0
        self._round = 0

    def on_access(self, pc: int, vaddr: int, hit: bool, t: float) -> list[PrefetchRequest]:
        """Test one offset, update RR, emit via the current best offset."""
        line = vaddr >> LINE_SHIFT
        # learning step: test one offset per access
        offset = self.offsets[self._test_index]
        if self._rr_hit(line - offset):
            self._scores[self._test_index] += 1
            if self._scores[self._test_index] >= self.score_max:
                self._end_phase(winner=offset)
                offset = None  # phase ended inside this access
        if offset is not None:
            self._test_index += 1
            if self._test_index >= len(self.offsets):
                self._test_index = 0
                self._round += 1
                if self._round >= self.round_max:
                    self._end_phase()
        self._rr_insert(line)
        if self.best_offset == 0:
            return []
        return [
            self._request(line + self.best_offset * k, pc, line, meta=k)
            for k in range(1, self.degree + 1)
        ]
