"""Prefetcher substrate: Berti, IPCP, BOP (L1D); SPP & adapters (L2C); FNL (L1I)."""

from repro.prefetch.base import L1dPrefetcher, NoPrefetcher
from repro.prefetch.berti import BertiPrefetcher
from repro.prefetch.berti_timely import BertiTimelyPrefetcher
from repro.prefetch.bop import BopPrefetcher
from repro.prefetch.ipcp import IpcpPrefetcher
from repro.prefetch.l2_adapters import (
    BopL2,
    IpcpL2,
    L2Prefetcher,
    NoL2Prefetcher,
    SppL2,
    make_l2_prefetcher,
)
from repro.prefetch.next_line import NextLinePrefetcher
from repro.prefetch.spp import SppPrefetcher
from repro.prefetch.stride import NextLineDataPrefetcher, StridePrefetcher


def make_l1d_prefetcher(name: str, *, extra_storage_bytes: int = 0) -> L1dPrefetcher:
    """Factory for the paper's three L1D prefetchers (plus 'none')."""
    key = name.lower()
    if key == "berti":
        return BertiPrefetcher(extra_storage_bytes=extra_storage_bytes)
    if key == "berti-timely":
        return BertiTimelyPrefetcher(extra_storage_bytes=extra_storage_bytes)
    if key == "ipcp":
        return IpcpPrefetcher(extra_storage_bytes=extra_storage_bytes)
    if key == "bop":
        return BopPrefetcher(degree=2, extra_storage_bytes=extra_storage_bytes)
    if key == "stride":
        return StridePrefetcher(extra_storage_bytes=extra_storage_bytes)
    if key == "next-line":
        return NextLineDataPrefetcher(extra_storage_bytes=extra_storage_bytes)
    if key == "none":
        return NoPrefetcher()
    raise KeyError(
        f"unknown L1D prefetcher {name!r}; known: berti, berti-timely, ipcp, bop, stride, next-line, none"
    )


__all__ = [
    "L1dPrefetcher",
    "NoPrefetcher",
    "BertiPrefetcher",
    "BertiTimelyPrefetcher",
    "BopPrefetcher",
    "IpcpPrefetcher",
    "BopL2",
    "IpcpL2",
    "L2Prefetcher",
    "NoL2Prefetcher",
    "SppL2",
    "make_l2_prefetcher",
    "NextLinePrefetcher",
    "NextLineDataPrefetcher",
    "StridePrefetcher",
    "SppPrefetcher",
    "make_l1d_prefetcher",
]
