"""FNL-style next-line instruction prefetcher for the L1I (Table IV: fnl-mma).

A deliberately small model of Seznec's FNL+MMA: on every fetched line,
prefetch the next `degree` sequential lines.  This keeps the L1I pressure
signal (L1I MPKI, used by the adaptive thresholding scheme) realistic
without modelling the full branch-directed front end.
"""

from __future__ import annotations


class NextLinePrefetcher:
    """Sequential next-line instruction prefetcher."""

    name = "fnl"

    def __init__(self, degree: int = 2):
        self.degree = degree
        self._last_line = -1

    def on_fetch(self, paddr_line: int) -> list[int]:
        """Returns instruction-line prefetch targets for a fetched line."""
        if paddr_line == self._last_line:
            return []
        self._last_line = paddr_line
        return [paddr_line + k for k in range(1, self.degree + 1)]
