"""Lightweight hit/miss statistics shared by caches, TLBs, and PSCs.

Every hardware structure owns a :class:`HitMissStats`.  The simulator snapshots
all stats at the end of warm-up so that reported MPKIs and miss rates cover
only the measured region, mirroring the paper's warm-up/measure methodology.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class HitMissStats:
    """Access/hit/miss counters with warm-up snapshotting."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    _snap_accesses: int = 0
    _snap_hits: int = 0
    _snap_misses: int = 0

    def record(self, hit: bool) -> None:
        """Count one access as a hit or a miss."""
        self.accesses += 1
        if hit:
            self.hits += 1
        else:
            self.misses += 1

    def snapshot(self) -> None:
        """Mark the warm-up boundary; measured_* report deltas from here."""
        self._snap_accesses = self.accesses
        self._snap_hits = self.hits
        self._snap_misses = self.misses

    @property
    def measured_accesses(self) -> int:
        """Accesses since the warm-up snapshot."""
        return self.accesses - self._snap_accesses

    @property
    def measured_hits(self) -> int:
        """Hits since the warm-up snapshot."""
        return self.hits - self._snap_hits

    @property
    def measured_misses(self) -> int:
        """Misses since the warm-up snapshot."""
        return self.misses - self._snap_misses

    @property
    def miss_rate(self) -> float:
        """Miss rate over the measured region (0.0 when unused)."""
        n = self.measured_accesses
        return self.measured_misses / n if n else 0.0

    def mpki(self, instructions: int) -> float:
        """Misses per kilo-instruction over the measured region."""
        return 1000.0 * self.measured_misses / instructions if instructions else 0.0
