"""Differential and metamorphic validation of the simulator.

Each check runs the *production* code paths twice under a transformation
that must not change the answer, then diffs the :class:`SimResult`\\ s
field by field:

* **determinism** — the same (workload, config) simulated twice is
  bit-identical (trace generation, large-page allocation and replacement
  are all seeded);
* **parallel-vs-serial** — a randomized batch of grid cells executed with
  ``jobs=N`` equals the same batch executed serially (``jobs=1``);
* **shm-grid-vs-serial** — the same grid run through the zero-copy
  shared-memory pack store (workers attach the parent's published packs)
  equals serial execution, and no ``/dev/shm`` segment survives the run;
* **discard-source equivalence** — running ``DiscardPgc`` equals running a
  prefetcher wrapper that suppresses page-cross candidates at the source
  (the policy layer must be side-effect-free when it discards); only the
  candidate bookkeeping (``pgc_candidates``/``pgc_discarded``) may differ;
* **epoch invariance** — for epoch-independent policies (discard, permit),
  changing ``epoch_instructions`` must not change any counter: epoch ends
  are bookkeeping, not events;
* **packed-vs-generator** — driving through the packed-trace fast path
  (``SimConfig(packed=True)``) is bit-identical to the generator drive
  loop for every fuzz prefetcher under discard and DRIPPER;
* **mix-packed-vs-generator** — the packed multi-core mix loop
  (:func:`repro.cpu.multicore.simulate_mix` with ``packed=True``) equals
  the generator mix loop per core, on a mix whose QMM core (halved
  budgets) finishes early and replays through the overflow seam;
* **vectorized-vs-fused** — the span-skipping vectorized kernel tier
  (``SimConfig(kernel="vectorized")``) equals the fused tier across its
  fallback seams: epoch rollovers mid-span, event-dense windows, runs with
  an ``epoch_listener`` attached, and non-LRU delegation;
* **invariants-clean** — every (workload × policy) run passes a full
  :class:`~repro.validate.InvariantChecker` pass with zero violations;
* **mutation detection** — re-introducing the fixed stale-MSHR bug via
  :func:`~repro.validate.reintroduce_stale_mshr_bug` makes a validated run
  raise, proving the checker actually has teeth.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, fields, replace
from typing import Any, Callable, Optional, Sequence

from repro.core.policies import PermitPgc
from repro.cpu.simulator import SimConfig, SimResult, build_engine, collect_result, drive, simulate
from repro.experiments.parallel import cell_for, run_cells
from repro.experiments.runner import RunSpec
from repro.params import DEFAULT_PARAMS
from repro.prefetch import make_l1d_prefetcher
from repro.prefetch.base import L1dPrefetcher
from repro.validate.invariants import InvariantChecker, InvariantViolation
from repro.validate.mutation import reintroduce_stale_mshr_bug
from repro.vm.address import PAGE_4K_SHIFT, canonical
from repro.workloads.registry import by_name

#: prefetchers the parallel fuzz draws from (cheap, deterministic trainers)
_FUZZ_PREFETCHERS = ("berti", "ipcp", "bop")
#: epoch lengths the fuzz and the invariance check draw from
_FUZZ_EPOCHS = (1024, 2048, 4096)


@dataclass
class CheckOutcome:
    """One differential check's verdict."""

    name: str
    passed: bool
    detail: str = ""


def result_diff(a: SimResult, b: SimResult, *, ignore: Sequence[str] = ()) -> dict[str, tuple[Any, Any]]:
    """Field-by-field differences between two results (empty == identical)."""
    diffs: dict[str, tuple[Any, Any]] = {}
    for f in fields(SimResult):
        if f.name in ignore:
            continue
        va, vb = getattr(a, f.name), getattr(b, f.name)
        if va != vb:
            diffs[f.name] = (va, vb)
    return diffs


def _summarise(diffs: dict[str, tuple[Any, Any]], limit: int = 4) -> str:
    parts = [f"{k}: {va!r} != {vb!r}" for k, (va, vb) in list(diffs.items())[:limit]]
    if len(diffs) > limit:
        parts.append(f"... {len(diffs) - limit} more")
    return "; ".join(parts)


class _SuppressCrossPage(L1dPrefetcher):
    """Wrap a prefetcher, dropping page-cross candidates at the source.

    Mirrors the engine's candidate test in ``_handle_prefetches`` exactly:
    a request is page-cross iff its canonicalised target lands outside the
    trigger's 4KB frame.  Running this under any policy must equal running
    the bare prefetcher under ``DiscardPgc`` — modulo the candidate
    bookkeeping that only the policy path performs.
    """

    def __init__(self, inner: L1dPrefetcher):
        self.inner = inner
        self.name = inner.name

    @property
    def extra_storage_bytes(self) -> int:
        return self.inner.extra_storage_bytes

    def on_access(self, pc: int, vaddr: int, hit: bool, t: float) -> list:
        trigger_page = vaddr >> PAGE_4K_SHIFT
        return [
            req for req in self.inner.on_access(pc, vaddr, hit, t)
            if (canonical(req.vaddr) >> PAGE_4K_SHIFT) == trigger_page
        ]

    def on_fill(self, vaddr: int, latency: float) -> None:
        self.inner.on_fill(vaddr, latency)


def _spec(prefetcher: str, policy: str, warmup: int, sim: int, **overrides: Any) -> RunSpec:
    return RunSpec(
        prefetcher=prefetcher,
        policy=policy,
        warmup_instructions=warmup,
        sim_instructions=sim,
        **overrides,
    )


# ---------------------------------------------------------------------------
# individual checks


def check_determinism(workload_name: str, *, prefetcher: str, policy: str,
                      warmup: int, sim: int) -> CheckOutcome:
    """Same seed, same config => bit-identical result."""
    workload = by_name(workload_name)
    spec = _spec(prefetcher, policy, warmup, sim)
    first = simulate(workload, spec.config_for(workload))
    second = simulate(workload, spec.config_for(workload))
    diffs = result_diff(first, second)
    name = f"determinism[{workload_name}/{policy}]"
    if diffs:
        return CheckOutcome(name, False, _summarise(diffs))
    return CheckOutcome(name, True, f"{first.instructions} instructions, ipc {first.ipc:.3f}")


def check_parallel_matches_serial(workload_names: Sequence[str], *,
                                  policies: Sequence[str], warmup: int, sim: int,
                                  seed: int, fuzz_cells: int, jobs: int) -> CheckOutcome:
    """A randomized cell batch run with jobs=N equals the serial run."""
    rng = random.Random(seed)
    cells = []
    for _ in range(fuzz_cells):
        workload = by_name(rng.choice(list(workload_names)))
        spec = _spec(
            rng.choice(_FUZZ_PREFETCHERS),
            rng.choice(list(policies)),
            warmup,
            sim,
            large_page_fraction=rng.choice((0.0, 0.25)),
        )
        cells.append(cell_for(workload, spec,
                              epoch_instructions=rng.choice(_FUZZ_EPOCHS)))
    serial = run_cells(cells, jobs=1)
    parallel = run_cells(cells, jobs=max(2, jobs))
    name = f"parallel-vs-serial[{fuzz_cells} cells]"
    for i, (a, b) in enumerate(zip(serial, parallel)):
        diffs = result_diff(a, b)
        if diffs:
            cell = cells[i]
            return CheckOutcome(
                name, False,
                f"cell {i} ({cell.workload}/{cell.spec.policy}/{cell.spec.prefetcher}): "
                + _summarise(diffs),
            )
    return CheckOutcome(name, True, f"{len(cells)} randomized cells identical")


def check_discard_source_equivalence(workload_name: str, *, prefetcher: str,
                                     warmup: int, sim: int) -> CheckOutcome:
    """DiscardPgc == suppressing page-cross candidates inside the prefetcher."""
    workload = by_name(workload_name)
    spec = _spec(prefetcher, "discard", warmup, sim)
    config = spec.config_for(workload)
    baseline = simulate(workload, config)

    suppressed = _SuppressCrossPage(make_l1d_prefetcher(prefetcher))
    engine = build_engine(config, prefetcher=suppressed)
    drive(engine, workload, config)
    source = collect_result(engine, workload.name, config)

    # only the policy path sees candidates; suppressing at the source zeroes
    # the candidate/discard bookkeeping but must change nothing else
    diffs = result_diff(baseline, source, ignore=("pgc_candidates", "pgc_discarded"))
    name = f"discard-source-equivalence[{workload_name}/{prefetcher}]"
    if diffs:
        return CheckOutcome(name, False, _summarise(diffs))
    if source.pgc_candidates != 0 or source.pgc_issued != 0:
        return CheckOutcome(
            name, False,
            f"suppressed run still saw candidates "
            f"(candidates={source.pgc_candidates}, issued={source.pgc_issued})",
        )
    return CheckOutcome(
        name, True,
        f"{baseline.pgc_candidates} candidates suppressed without side effects",
    )


def check_epoch_invariance(workload_name: str, *, prefetcher: str,
                           warmup: int, sim: int) -> CheckOutcome:
    """Epoch length must not alter counters for epoch-independent policies."""
    workload = by_name(workload_name)
    for policy in ("discard", "permit"):
        spec = _spec(prefetcher, policy, warmup, sim)
        results = []
        for epoch in _FUZZ_EPOCHS:
            config = replace(spec.config_for(workload), epoch_instructions=epoch)
            results.append(simulate(workload, config))
        for other, epoch in zip(results[1:], _FUZZ_EPOCHS[1:]):
            diffs = result_diff(results[0], other)
            if diffs:
                return CheckOutcome(
                    f"epoch-invariance[{workload_name}/{policy}]", False,
                    f"epoch {_FUZZ_EPOCHS[0]} vs {epoch}: " + _summarise(diffs),
                )
    return CheckOutcome(
        f"epoch-invariance[{workload_name}]", True,
        f"epochs {_FUZZ_EPOCHS} identical for discard and permit",
    )


def check_packed_matches_generator(workload_name: str, *, warmup: int,
                                   sim: int) -> list[CheckOutcome]:
    """The packed fast path equals the generator drive loop bit-for-bit.

    Covers every fuzz prefetcher under both a static policy (discard) and
    the epoch-adaptive one (dripper) — the two exercise disjoint sets of
    fused branches.  DRIPPER additionally runs with a deliberately short
    epoch so the packed loop's *inline* epoch rollover (it no longer bails
    to ``step()`` at epoch boundaries) fires many times per measurement
    window.
    """
    workload = by_name(workload_name)
    outcomes = []
    for prefetcher in _FUZZ_PREFETCHERS:
        for policy, epoch in (("discard", None), ("dripper", None), ("dripper", 512)):
            spec = _spec(prefetcher, policy, warmup, sim)
            config = spec.config_for(workload)
            if epoch is not None:
                config = replace(config, epoch_instructions=epoch)
            generator = simulate(workload, config)
            packed = simulate(workload, replace(config, packed=True))
            diffs = result_diff(generator, packed)
            tag = f"{policy}@{epoch}" if epoch is not None else policy
            name = f"packed-vs-generator[{workload_name}/{prefetcher}/{tag}]"
            if diffs:
                outcomes.append(CheckOutcome(name, False, _summarise(diffs)))
            else:
                outcomes.append(CheckOutcome(
                    name, True, f"identical at ipc {generator.ipc:.3f}"
                ))
    # vectorized tier against the generator: engaged (span-skipping) for the
    # no-prefetcher cells, delegating to the fused kernel for real
    # prefetchers — bit-identical either way
    for prefetcher, policy, epoch in (
        ("none", "discard", None),
        ("none", "discard", 512),
        (_FUZZ_PREFETCHERS[0], "discard", None),
    ):
        spec = _spec(prefetcher, policy, warmup, sim)
        config = spec.config_for(workload)
        if epoch is not None:
            config = replace(config, epoch_instructions=epoch)
        generator = simulate(workload, config)
        vectorized = simulate(workload, replace(config, kernel="vectorized"))
        diffs = result_diff(generator, vectorized)
        tag = f"{policy}@{epoch}" if epoch is not None else policy
        name = f"vectorized-vs-generator[{workload_name}/{prefetcher}/{tag}]"
        if diffs:
            outcomes.append(CheckOutcome(name, False, _summarise(diffs)))
        else:
            outcomes.append(CheckOutcome(
                name, True, f"identical at ipc {generator.ipc:.3f}"
            ))
    return outcomes


def check_vectorized_matches_fused(workload_name: str, *, warmup: int,
                                   sim: int) -> list[CheckOutcome]:
    """The vectorized tier equals the fused tier across its fallback seams.

    Each cell targets one seam of :mod:`repro.cpu.fastpath_vec`:

    * hit-dominated kernels where nearly every window is one long span
      (``hot_0``), including a deliberately short epoch so spans run
      *across* many rollovers (the deferred-epoch segment commit);
    * a branchy kernel (``hot_3``) whose taken branches pepper the windows
      with events, exercising the event-run stepping between spans;
    * the caller's workload — miss-heavy, so spans are short and the
      residency proofs keep failing over to stepping;
    * ``validate=True``, which chains an ``epoch_listener`` onto the engine
      — spans must clip at epoch boundaries and the residency-proof caches
      must drop after every rollover (and the invariant checker audits the
      run for free);
    * a non-LRU replacement policy, which fails the capability probe and
      must delegate to the fused tier untouched.
    """
    outcomes = []
    cells: list[tuple[str, str, str, dict[str, Any]]] = [
        ("hot_0", "none", "discard", {}),
        ("hot_0", "none", "discard", {"epoch_instructions": 512}),
        ("hot_3", "none", "permit", {}),
        (workload_name, "none", "discard", {}),
        ("hot_0", "none", "discard", {"validate": True}),
    ]
    for wname, prefetcher, policy, overrides in cells:
        workload = by_name(wname)
        config = _spec(prefetcher, policy, warmup, sim).config_for(workload)
        config = replace(config, packed=True, **overrides)
        fused = simulate(workload, config)
        vectorized = simulate(workload, replace(config, kernel="vectorized"))
        diffs = result_diff(fused, vectorized)
        tag = "/".join(f"{k}={v}" for k, v in overrides.items()) or "default"
        name = f"vectorized-vs-fused[{wname}/{policy}/{tag}]"
        if diffs:
            outcomes.append(CheckOutcome(name, False, _summarise(diffs)))
        else:
            outcomes.append(CheckOutcome(
                name, True, f"identical at ipc {fused.ipc:.3f}"
            ))
    # non-LRU replacement: the capability probe must reject and delegate
    workload = by_name("hot_0")
    srrip = replace(DEFAULT_PARAMS, l1d=replace(DEFAULT_PARAMS.l1d, replacement="srrip"))
    config = replace(_spec("none", "discard", warmup, sim).config_for(workload),
                     packed=True, params=srrip)
    fused = simulate(workload, config)
    vectorized = simulate(workload, replace(config, kernel="vectorized"))
    diffs = result_diff(fused, vectorized)
    name = "vectorized-vs-fused[hot_0/discard/srrip-delegates]"
    if diffs:
        outcomes.append(CheckOutcome(name, False, _summarise(diffs)))
    else:
        outcomes.append(CheckOutcome(
            name, True, f"identical at ipc {fused.ipc:.3f}"
        ))
    return outcomes


def check_sampled_matches_full(
    workload_name: str, *, prefetcher: str = "berti", policy: str = "dripper",
    warmup: int, sim: int, sampling: Optional[Any] = None,
) -> list[CheckOutcome]:
    """Phase-sampled reconstruction stays within its claimed error bound.

    Sampling is an *approximation* (functional warm-up cannot rebuild state
    older than its prefix), so unlike every bit-identity check above this
    one asserts a bound: the reconstructed IPC must sit within
    ``sampling.max_rel_error`` of a full run of the same window.  It also
    asserts the approximation is *reproducible* — two sampled runs with the
    same seed must be bit-identical (clustering init and the bootstrap are
    both seeded).
    """
    from repro.experiments.sampling import SamplingConfig

    if sampling is None:
        # Sampling is undefined at the suite's micro windows (a 1.5k-instr
        # window split 16 ways leaves ~100 instructions per interval, all
        # boundary noise), so the default check floors the window to the
        # smallest scale where phases are real and keeps half the intervals
        # as phases — enough for the seeded clustering to isolate outlier
        # intervals (astar has two ~30x-slower ones in this window).
        # Explicit ``sampling=`` keeps the caller's window untouched.
        warmup = max(warmup, 4_000)
        sim = max(sim, 48_000)
        sampling = SamplingConfig(intervals=16, phases=8, warmup_fraction=1.0,
                                  max_rel_error=0.05)
    workload = by_name(workload_name)
    spec = _spec(prefetcher, policy, warmup, sim)
    config = spec.config_for(workload)
    full = simulate(workload, config)
    sampled = simulate(workload, replace(config, sampling=sampling))
    again = simulate(workload, replace(config, sampling=sampling))
    outcomes = []
    diffs = result_diff(sampled, again)
    det_name = f"sampled-deterministic[{workload_name}/{prefetcher}/{policy}]"
    if diffs:
        outcomes.append(CheckOutcome(det_name, False, _summarise(diffs)))
    else:
        outcomes.append(CheckOutcome(
            det_name, True,
            f"bit-identical across reruns at seed {sampling.seed}"))
    rel_error = abs(sampled.ipc - full.ipc) / full.ipc if full.ipc else 0.0
    err_name = f"sampled-error-bound[{workload_name}/{prefetcher}/{policy}]"
    detail = (
        f"full ipc {full.ipc:.4f}, sampled {sampled.ipc:.4f} "
        f"[{sampled.ipc_ci_lo:.4f}, {sampled.ipc_ci_hi:.4f}] "
        f"({sampled.sampled_phases} phases/{sampled.sampled_intervals} "
        f"intervals), rel error {100 * rel_error:.2f}% "
        f"(bound {100 * sampling.max_rel_error:.1f}%)")
    outcomes.append(CheckOutcome(err_name, rel_error <= sampling.max_rel_error,
                                 detail))
    return outcomes


def check_mix_packed_matches_generator(*, warmup: int, sim: int,
                                       cores: int = 4) -> list[CheckOutcome]:
    """The packed mix drive loop equals the generator mix loop per core.

    The mix deliberately includes a QMM workload: its per-core budgets are
    halved by ``simulate_mix``, so that core finishes early and *replays*
    while the full-budget cores catch up — driving the packed loop past its
    packed prefix and into the overflow-continuation path (a fresh
    generator advanced past the pack).  Checked under a static policy
    (discard) and the epoch-adaptive DRIPPER, which exercise disjoint sets
    of per-core state.
    """
    from repro.cpu.multicore import simulate_mix
    from repro.workloads.registry import seen_workloads

    qmm = next(w for w in seen_workloads() if w.suite.startswith("QMM"))
    names = ["astar", "hmmer", "mcf", "lbm"]
    mix = [by_name(name) for name in names[:cores - 1]] + [qmm]
    tag = "+".join(w.name for w in mix)
    outcomes = []
    for policy in ("discard", "dripper"):
        config = _spec("berti", policy, warmup, sim).base_config()
        generator = simulate_mix(mix, config)
        packed = simulate_mix(mix, replace(config, packed=True))
        name = f"mix-packed-vs-generator[{tag}/{policy}]"
        failed = False
        for core, (a, b) in enumerate(zip(generator.results, packed.results)):
            diffs = result_diff(a, b)
            if diffs:
                outcomes.append(CheckOutcome(
                    name, False,
                    f"core {core} ({a.workload}): " + _summarise(diffs)))
                failed = True
                break
        if not failed:
            outcomes.append(CheckOutcome(
                name, True,
                f"{len(mix)} cores identical, weighted "
                f"ipcs {[round(r.ipc, 3) for r in generator.results]}"))
    return outcomes


def check_shm_grid_matches_serial(workload_names: Sequence[str], *,
                                  policies: Sequence[str], prefetcher: str,
                                  warmup: int, sim: int, jobs: int) -> CheckOutcome:
    """The shared-memory grid path equals serial execution, and cleans up.

    Runs the (workload × policy) grid once serially and once on a worker
    pool with the zero-copy pack store (``shm=True``): workers attach the
    parent's published segments instead of re-packing, and must produce
    field-identical results.  Afterwards no ``repro-pack-*`` segment may
    remain in ``/dev/shm`` — a leak means a store outlived its session.
    """
    from repro.experiments.parallel import grid_session
    from repro.workloads.shm import live_segments

    cells = [
        cell_for(by_name(name), _spec(prefetcher, policy, warmup, sim))
        for name in workload_names
        for policy in policies
    ]
    serial = run_cells(cells, jobs=1)
    with grid_session(max(2, jobs), True):
        shared = run_cells(cells, jobs=max(2, jobs), shm=True)
    name = f"shm-grid-vs-serial[{len(cells)} cells]"
    for i, (a, b) in enumerate(zip(serial, shared)):
        diffs = result_diff(a, b)
        if diffs:
            cell = cells[i]
            return CheckOutcome(
                name, False,
                f"cell {i} ({cell.workload}/{cell.spec.policy}): " + _summarise(diffs),
            )
    leaked = live_segments()
    if leaked:
        return CheckOutcome(name, False, f"leaked shm segments: {', '.join(leaked)}")
    return CheckOutcome(name, True, f"{len(cells)} cells identical, no segments leaked")


def check_invariants_clean(workload_names: Sequence[str], *, policies: Sequence[str],
                           prefetcher: str, warmup: int, sim: int) -> list[CheckOutcome]:
    """Every (workload x policy) run passes a full invariant pass."""
    outcomes = []
    for workload_name in workload_names:
        workload = by_name(workload_name)
        for policy in policies:
            spec = _spec(prefetcher, policy, warmup, sim)
            config = replace(spec.config_for(workload), validate=True)
            name = f"invariants[{workload_name}/{policy}]"
            try:
                result = simulate(workload, config)
            except InvariantViolation as violation:
                outcomes.append(CheckOutcome(name, False, str(violation)))
            else:
                outcomes.append(CheckOutcome(
                    name, True, f"clean at ipc {result.ipc:.3f}"
                ))
    return outcomes


def check_mutation_detected(workload_name: str, *, prefetcher: str,
                            warmup: int, sim: int) -> CheckOutcome:
    """The checker must catch the re-introduced stale-MSHR bug."""
    workload = by_name(workload_name)
    params = replace(DEFAULT_PARAMS, l1d=replace(DEFAULT_PARAMS.l1d, mshr_entries=2))
    config = SimConfig(
        prefetcher=prefetcher,
        policy_factory=PermitPgc,
        warmup_instructions=warmup,
        sim_instructions=sim,
        params=params,
        validate=True,
    )
    name = f"mutation-detected[{workload_name}]"
    try:
        simulate(workload, config)
    except InvariantViolation as violation:
        return CheckOutcome(
            name, False,
            f"clean simulator tripped the checker before mutation: {violation}",
        )
    with reintroduce_stale_mshr_bug():
        try:
            simulate(workload, config)
        except InvariantViolation as violation:
            if violation.invariant != "mshr-accounting":
                return CheckOutcome(
                    name, False,
                    f"mutation tripped the wrong invariant: {violation.invariant}",
                )
            return CheckOutcome(name, True, "stale-MSHR mutation caught: " + violation.message)
    return CheckOutcome(name, False, "stale-MSHR mutation went undetected")


# ---------------------------------------------------------------------------
# suite driver


def run_validation_suite(
    workload_names: Sequence[str],
    *,
    policies: Sequence[str] = ("discard", "permit", "dripper"),
    prefetcher: str = "berti",
    warmup: int = 2_000,
    sim: int = 6_000,
    seed: int = 0,
    fuzz_cells: int = 4,
    jobs: int = 2,
    progress: Optional[Callable[[CheckOutcome], None]] = None,
) -> list[CheckOutcome]:
    """Run the full differential suite; returns one outcome per check."""
    if not workload_names:
        raise ValueError("run_validation_suite needs at least one workload")
    anchor = workload_names[0]
    outcomes: list[CheckOutcome] = []

    def record(outcome: CheckOutcome) -> None:
        outcomes.append(outcome)
        if progress is not None:
            progress(outcome)

    record(check_determinism(anchor, prefetcher=prefetcher, policy=policies[0],
                             warmup=warmup, sim=sim))
    record(check_parallel_matches_serial(
        workload_names, policies=policies, warmup=warmup, sim=sim,
        seed=seed, fuzz_cells=fuzz_cells, jobs=jobs))
    record(check_shm_grid_matches_serial(
        workload_names, policies=policies, prefetcher=prefetcher,
        warmup=warmup, sim=sim, jobs=jobs))
    record(check_discard_source_equivalence(anchor, prefetcher=prefetcher,
                                            warmup=warmup, sim=sim))
    record(check_epoch_invariance(anchor, prefetcher=prefetcher,
                                  warmup=warmup, sim=sim))
    for outcome in check_packed_matches_generator(anchor, warmup=warmup, sim=sim):
        record(outcome)
    for outcome in check_vectorized_matches_fused(anchor, warmup=warmup, sim=sim):
        record(outcome)
    for outcome in check_sampled_matches_full(anchor, prefetcher=prefetcher,
                                              policy=policies[-1],
                                              warmup=warmup, sim=sim):
        record(outcome)
    for outcome in check_mix_packed_matches_generator(warmup=warmup, sim=sim):
        record(outcome)
    for outcome in check_invariants_clean(workload_names, policies=policies,
                                          prefetcher=prefetcher, warmup=warmup, sim=sim):
        record(outcome)
    record(check_mutation_detected(anchor, prefetcher=prefetcher,
                                   warmup=warmup, sim=sim))
    return outcomes
