"""Runtime invariant checking and differential validation.

Two complementary layers guard the simulator's headline counters:

* :class:`InvariantChecker` (:mod:`repro.validate.invariants`) attaches to a
  live :class:`~repro.cpu.core.CoreEngine` and asserts conservation laws per
  epoch and at result-collection time — enabled per run via
  ``SimConfig(validate=True)`` or the CLI's ``--validate`` flag;
* :func:`run_validation_suite` (:mod:`repro.validate.differential`) runs
  metamorphic checks over the production code paths — determinism,
  parallel == serial, shm grid == serial, discard == source suppression,
  epoch invariance, packed == generator (single-core and per mix core),
  sampled-within-error-bound against a full run
  (:func:`check_sampled_matches_full`), a clean invariant pass per
  (workload × policy), and
  mutation detection via :func:`reintroduce_stale_mshr_bug` — exposed as
  the ``repro validate`` subcommand.
"""

from repro.validate.differential import (
    CheckOutcome,
    check_mix_packed_matches_generator,
    check_packed_matches_generator,
    check_sampled_matches_full,
    check_shm_grid_matches_serial,
    result_diff,
    run_validation_suite,
)
from repro.validate.invariants import InvariantChecker, InvariantViolation
from repro.validate.mutation import reintroduce_stale_mshr_bug

__all__ = [
    "CheckOutcome",
    "check_mix_packed_matches_generator",
    "check_packed_matches_generator",
    "check_sampled_matches_full",
    "check_shm_grid_matches_serial",
    "InvariantChecker",
    "InvariantViolation",
    "reintroduce_stale_mshr_bug",
    "result_diff",
    "run_validation_suite",
]
