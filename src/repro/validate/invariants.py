"""Runtime invariant checking for simulation runs.

An :class:`InvariantChecker` attaches to a built :class:`CoreEngine` through
the same opt-in seams the profiler uses (chained ``epoch_listener``,
instance-level method wraps), so an unvalidated run pays nothing.  While
attached it asserts the conservation laws the paper's headline counters rest
on:

* **PgcStats** — ``issued + discarded == candidates`` (every page-cross
  candidate is resolved exactly once), ``discarded_no_translation <=
  discarded``, ``same_translation <= candidates``;
* **HitMissStats** — ``hits + misses == accesses`` for every cache, TLB and
  PSC level, demand traffic a subset of total traffic, and every warm-up
  snapshot behind its live counter (measured deltas never negative);
* **capacity** — cache/TLB/PSC occupancy never exceeds ``sets × ways``
  (resp. ``entries``);
* **MSHR accounting** — the in-flight miss count each cache reports (the
  ``l1d_inflight_misses`` policy feature) equals an independent recount of
  distinct incomplete misses, i.e. it is pruned of completed fills and
  deduplicated (the seed's optimistic slot allocation admits transient
  oversubscription under bursts, so a hard capacity bound is deliberately
  *not* asserted — the accounting, not the queueing model, is the law);
* **prefetch accounting** — each prefetched block resolves to at most one of
  useful/useless while running and exactly one after ``finalize()``; the
  page-cross subset and late counts never exceed their supersets;
* **timeline monotonicity** — ``instructions`` strictly increasing,
  ``retire_t`` nondecreasing, and every cache fill's ready time at or after
  the fill itself.

A failed law raises a structured :class:`InvariantViolation` carrying the
offending counter snapshot; when the run has an
:class:`~repro.obs.Observability` bundle with a journal, the violation is
journaled as an ``invariant_violation`` record before the raise.

To add an invariant: write a ``_check_*`` helper that calls :meth:`_fail`
with a name, a human-readable message, and the counter snapshot that proves
the breakage, then call it from :meth:`check_epoch` (per-epoch laws) or
:meth:`check_final` (end-of-run laws).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cpu.core import CoreEngine
    from repro.cpu.simulator import SimResult
    from repro.mem.cache import Cache
    from repro.obs import Observability
    from repro.vm.tlb import Tlb

#: bump when the violation-record layout changes incompatibly
VIOLATION_SCHEMA = 1


def _rebuild_violation(invariant: str, message: str, snapshot: dict,
                       scope: str, workload: str) -> "InvariantViolation":
    return InvariantViolation(invariant, message, snapshot, scope=scope, workload=workload)


class InvariantViolation(AssertionError):
    """A conservation law failed; carries the counters that broke it."""

    def __init__(self, invariant: str, message: str, snapshot: dict[str, Any],
                 *, scope: str = "run", workload: str = ""):
        where = f"{scope}, workload {workload}" if workload else scope
        super().__init__(f"[{invariant}] {message} ({where}) counters={snapshot}")
        self.invariant = invariant
        self.message = message
        self.snapshot = snapshot
        self.scope = scope
        self.workload = workload

    def __reduce__(self):  # crosses process-pool boundaries intact
        return _rebuild_violation, (self.invariant, self.message, self.snapshot,
                                    self.scope, self.workload)

    def to_record(self) -> dict[str, Any]:
        """JSON-serialisable journal record for this violation."""
        return {
            "schema": VIOLATION_SCHEMA,
            "kind": "invariant_violation",
            "invariant": self.invariant,
            "message": self.message,
            "scope": self.scope,
            "workload": self.workload,
            "snapshot": dict(self.snapshot),
        }


class InvariantChecker:
    """Asserts conservation laws over a live :class:`CoreEngine`.

    Attach once per engine before driving it; the checker chains any
    already-installed ``epoch_listener`` (e.g. a timeline recorder) and
    wraps ``begin_measurement`` and each cache's ``fill`` at instance level,
    so detached engines are untouched and unvalidated runs pay zero cost.
    """

    def __init__(self, *, obs: Optional["Observability"] = None, workload: str = ""):
        self.obs = obs
        self.workload = workload
        #: number of completed check passes (epoch + final)
        self.checks = 0
        #: violations raised so far (a run normally stops at the first)
        self.violations = 0
        #: resident prefetched/pcb blocks with unresolved usefulness at the
        #: warm-up boundary — the measured-region useful+useless carry-over
        self.snapshot_resident_prefetched = 0
        self.snapshot_resident_pcb = 0
        self._last_instructions = -1
        self._last_retire_t = float("-inf")

    # ------------------------------------------------------------------
    # wiring

    def attach(self, engine: "CoreEngine") -> None:
        """Hook the checker into `engine` (chains existing listeners)."""
        prev_listener = engine.epoch_listener

        def on_epoch(eng: "CoreEngine", epoch: Any) -> None:
            if prev_listener is not None:
                prev_listener(eng, epoch)
            self.check_epoch(eng)

        engine.epoch_listener = on_epoch

        prev_begin = engine.begin_measurement

        def begin_measurement() -> None:
            prev_begin()
            pf, pcb = engine.hierarchy.l1d.resident_prefetch_counts()
            self.snapshot_resident_prefetched = pf
            self.snapshot_resident_pcb = pcb

        engine.begin_measurement = begin_measurement
        h = engine.hierarchy
        for cache in (h.l1i, h.l1d, h.l2c, h.llc):
            self._wrap_fill(cache)

    def _wrap_fill(self, cache: "Cache") -> None:
        original = cache.fill
        name = cache.name

        def checked_fill(line: int, t: float, ready: float, **kw: Any) -> None:
            if ready < t:
                self._fail(
                    "fill-ready-monotonic",
                    f"{name} fill with ready time in the past",
                    {"cache": name, "line": line, "t": t, "ready": ready},
                    scope="fill",
                )
            original(line, t, ready, **kw)

        cache.fill = checked_fill

    # ------------------------------------------------------------------
    # failure path

    def _fail(self, invariant: str, message: str, snapshot: dict[str, Any],
              *, scope: str) -> None:
        self.violations += 1
        violation = InvariantViolation(
            invariant, message, snapshot, scope=scope, workload=self.workload
        )
        if self.obs is not None and self.obs.journal is not None:
            self.obs.journal.append_record(violation.to_record())
        raise violation

    # ------------------------------------------------------------------
    # structure-level laws

    def _check_stats(self, name: str, stats: Any, scope: str) -> None:
        if stats.hits + stats.misses != stats.accesses:
            self._fail(
                "hit-miss-conservation",
                f"{name}: hits + misses != accesses",
                {"structure": name, "accesses": stats.accesses,
                 "hits": stats.hits, "misses": stats.misses},
                scope=scope,
            )
        if min(stats.measured_accesses, stats.measured_hits, stats.measured_misses) < 0:
            self._fail(
                "snapshot-behind-counter",
                f"{name}: warm-up snapshot ahead of live counters",
                {"structure": name,
                 "measured_accesses": stats.measured_accesses,
                 "measured_hits": stats.measured_hits,
                 "measured_misses": stats.measured_misses},
                scope=scope,
            )

    def _check_cache(self, cache: "Cache", now: float, scope: str) -> None:
        params = cache.params
        capacity = params.sets * params.ways
        occupancy = cache.occupancy()
        if occupancy > capacity:
            self._fail(
                "cache-capacity",
                f"{cache.name}: occupancy exceeds capacity",
                {"cache": cache.name, "occupancy": occupancy, "capacity": capacity},
                scope=scope,
            )
        self._check_stats(f"{cache.name}.stats", cache.stats, scope)
        self._check_stats(f"{cache.name}.demand_stats", cache.demand_stats, scope)
        if cache.demand_stats.accesses > cache.stats.accesses:
            self._fail(
                "demand-subset",
                f"{cache.name}: demand accesses exceed total accesses",
                {"cache": cache.name, "demand": cache.demand_stats.accesses,
                 "total": cache.stats.accesses},
                scope=scope,
            )
        # independent recount: distinct heap lines whose fetch is incomplete
        # per the line-keyed map — what in_flight_misses must report once
        # completed entries are pruned and duplicates collapsed
        reported = cache.in_flight_misses(now)
        incomplete = {
            line for ready, line in cache._mshr_heap
            if ready > now and cache._outstanding.get(line, 0.0) > now
        }
        if reported != len(incomplete):
            self._fail(
                "mshr-accounting",
                f"{cache.name}: reported in-flight misses disagree with the "
                "pruned, deduplicated recount",
                {"cache": cache.name, "t": now, "reported": reported,
                 "incomplete": len(incomplete), "heap": len(cache._mshr_heap),
                 "mshr_entries": params.mshr_entries},
                scope=scope,
            )
        pf = {
            "fills": cache.prefetch_fills,
            "useful": cache.prefetch_useful,
            "useless": cache.prefetch_useless,
            "late": cache.prefetch_late,
            "pgc_fills": cache.pgc_fills,
            "pgc_useful": cache.pgc_useful,
            "pgc_useless": cache.pgc_useless,
        }
        if pf["useful"] + pf["useless"] > pf["fills"]:
            self._fail(
                "prefetch-resolution",
                f"{cache.name}: more prefetches resolved than filled",
                {"cache": cache.name, **pf},
                scope=scope,
            )
        if pf["late"] > pf["useful"]:
            self._fail(
                "prefetch-late-subset",
                f"{cache.name}: late prefetches exceed useful prefetches",
                {"cache": cache.name, **pf},
                scope=scope,
            )
        if (pf["pgc_fills"] > pf["fills"] or pf["pgc_useful"] > pf["useful"]
                or pf["pgc_useless"] > pf["useless"]):
            self._fail(
                "pgc-subset",
                f"{cache.name}: page-cross counters exceed their prefetch supersets",
                {"cache": cache.name, **pf},
                scope=scope,
            )
        if any(value < 0 for value in cache.measured_prefetch.values()):
            self._fail(
                "snapshot-behind-counter",
                f"{cache.name}: prefetch snapshot ahead of live counters",
                {"cache": cache.name, **cache.measured_prefetch},
                scope=scope,
            )

    def _check_tlb(self, tlb: "Tlb", scope: str) -> None:
        params = tlb.params
        name = params.name
        occupancy = tlb.occupancy()
        if occupancy > params.entries:
            self._fail(
                "tlb-capacity",
                f"{name}: occupancy exceeds entry count",
                {"tlb": name, "occupancy": occupancy, "entries": params.entries},
                scope=scope,
            )
        self._check_stats(f"{name}.stats", tlb.stats, scope)
        if tlb.prefetch_hits > tlb.stats.hits:
            self._fail(
                "tlb-prefetch-subset",
                f"{name}: prefetch hits exceed total hits",
                {"tlb": name, "prefetch_hits": tlb.prefetch_hits, "hits": tlb.stats.hits},
                scope=scope,
            )
        if tlb.measured_prefetch_hits < 0 or tlb.measured_prefetch_evicted_unused < 0:
            self._fail(
                "snapshot-behind-counter",
                f"{name}: prefetch snapshot ahead of live counters",
                {"tlb": name,
                 "measured_prefetch_hits": tlb.measured_prefetch_hits,
                 "measured_prefetch_evicted_unused": tlb.measured_prefetch_evicted_unused},
                scope=scope,
            )

    def _check_pgc(self, engine: "CoreEngine", scope: str) -> None:
        pgc = engine.pgc
        counters = {
            "candidates": pgc.candidates,
            "issued": pgc.issued,
            "discarded": pgc.discarded,
            "discarded_no_translation": pgc.discarded_no_translation,
            "same_translation": pgc.same_translation,
        }
        if pgc.issued + pgc.discarded != pgc.candidates:
            self._fail(
                "pgc-conservation",
                "issued + discarded != candidates",
                counters,
                scope=scope,
            )
        if pgc.discarded_no_translation > pgc.discarded:
            self._fail(
                "pgc-discard-subset",
                "discarded_no_translation exceeds discarded",
                counters,
                scope=scope,
            )
        if pgc.same_translation > pgc.candidates:
            self._fail(
                "pgc-same-translation-subset",
                "same_translation exceeds candidates",
                counters,
                scope=scope,
            )
        if any(delta < 0 for delta in pgc.measured().values()):
            self._fail(
                "snapshot-behind-counter",
                "page-cross snapshot ahead of live counters",
                {**counters, **{f"measured_{k}": v for k, v in pgc.measured().items()}},
                scope=scope,
            )

    def _check_timeline(self, engine: "CoreEngine", scope: str) -> None:
        if engine.instructions <= self._last_instructions:
            self._fail(
                "instructions-monotonic",
                "instruction count did not advance between checks",
                {"instructions": engine.instructions, "previous": self._last_instructions},
                scope=scope,
            )
        if engine.retire_t < self._last_retire_t:
            self._fail(
                "retire-monotonic",
                "retire_t went backwards between checks",
                {"retire_t": engine.retire_t, "previous": self._last_retire_t},
                scope=scope,
            )
        self._last_instructions = engine.instructions
        self._last_retire_t = engine.retire_t
        if engine.measuring and (engine.measured_instructions < 0 or engine.measured_cycles < 0):
            self._fail(
                "measured-region-nonnegative",
                "measured instructions/cycles negative",
                {"measured_instructions": engine.measured_instructions,
                 "measured_cycles": engine.measured_cycles},
                scope=scope,
            )

    # ------------------------------------------------------------------
    # entry points

    def check_epoch(self, engine: "CoreEngine") -> None:
        """Assert every per-epoch law (invoked from the chained listener)."""
        scope = f"epoch@{engine.instructions}"
        now = engine.retire_t
        self._check_timeline(engine, scope)
        self._check_pgc(engine, scope)
        h = engine.hierarchy
        for cache in (h.l1i, h.l1d, h.l2c, h.llc):
            self._check_cache(cache, now, scope)
        self._check_stats("llc_core_stats", h.llc_core_stats, scope)
        for tlb in (engine.dtlb, engine.itlb, engine.stlb):
            self._check_tlb(tlb, scope)
        for level, psc in engine.walker.psc.levels.items():
            self._check_stats(f"psc.L{level}", psc.stats, scope)
            if len(psc._store) > psc.entries:
                self._fail(
                    "psc-capacity",
                    f"PSC L{level}: occupancy exceeds entry count",
                    {"level": level, "occupancy": len(psc._store), "entries": psc.entries},
                    scope=scope,
                )
        walker = engine.walker
        if walker.measured_demand_walks < 0 or walker.measured_speculative_walks < 0:
            self._fail(
                "snapshot-behind-counter",
                "walker snapshot ahead of live counters",
                {"demand_walks": walker.demand_walks,
                 "speculative_walks": walker.speculative_walks,
                 "measured_demand_walks": walker.measured_demand_walks,
                 "measured_speculative_walks": walker.measured_speculative_walks},
                scope=scope,
            )
        self.checks += 1

    def check_final(self, engine: "CoreEngine", result: "SimResult") -> None:
        """Assert end-of-run laws over the finalized engine and its result."""
        scope = "final"
        self._last_instructions = engine.instructions - 1  # allow a no-op epoch
        self.check_epoch(engine)
        h = engine.hierarchy
        for cache in (h.l1i, h.l1d, h.l2c, h.llc):
            # finalize() has resolved every outstanding prefetched block, so
            # the running inequality tightens to an exact conservation law
            resolved = cache.prefetch_useful + cache.prefetch_useless
            if resolved != cache.prefetch_fills:
                self._fail(
                    "prefetch-resolution-final",
                    f"{cache.name}: finalized useful + useless != fills",
                    {"cache": cache.name, "useful": cache.prefetch_useful,
                     "useless": cache.prefetch_useless, "fills": cache.prefetch_fills},
                    scope=scope,
                )
        self._check_result(engine, result)
        self.checks += 1

    def _check_result(self, engine: "CoreEngine", result: "SimResult") -> None:
        scope = "final"
        if result.pgc_issued + result.pgc_discarded != result.pgc_candidates:
            self._fail(
                "pgc-conservation",
                "result: pgc_issued + pgc_discarded != pgc_candidates",
                {"candidates": result.pgc_candidates, "issued": result.pgc_issued,
                 "discarded": result.pgc_discarded},
                scope=scope,
            )
        measured_pgc_fills = engine.hierarchy.l1d.measured_prefetch["pgc_fills"]
        if result.pgc_useful + result.pgc_useless > measured_pgc_fills + self.snapshot_resident_pcb:
            self._fail(
                "pgc-resolution-bound",
                "result: pgc_useful + pgc_useless exceed measured fills plus "
                "warm-up resident carry-over",
                {"pgc_useful": result.pgc_useful, "pgc_useless": result.pgc_useless,
                 "measured_pgc_fills": measured_pgc_fills,
                 "resident_at_snapshot": self.snapshot_resident_pcb},
                scope=scope,
            )
        if (result.prefetch_useful + result.prefetch_useless
                > result.prefetch_fills + self.snapshot_resident_prefetched):
            self._fail(
                "prefetch-resolution-bound",
                "result: useful + useless exceed measured fills plus warm-up "
                "resident carry-over",
                {"prefetch_useful": result.prefetch_useful,
                 "prefetch_useless": result.prefetch_useless,
                 "prefetch_fills": result.prefetch_fills,
                 "resident_at_snapshot": self.snapshot_resident_prefetched},
                scope=scope,
            )
        # gaps advance `instructions` by more than one, so the measured region
        # may over/undershoot the request by up to one gap at each boundary —
        # equality is not a law, but emptiness means the drive loop is broken
        if result.requested_instructions > 0 and result.instructions <= 0:
            self._fail(
                "measured-region-nonempty",
                "result: requested a measured region but none was recorded",
                {"instructions": result.instructions,
                 "requested_instructions": result.requested_instructions},
                scope=scope,
            )
        if result.l1d_demand_misses != engine.hierarchy.l1d.demand_stats.measured_misses:
            self._fail(
                "result-engine-mismatch",
                "result: l1d_demand_misses disagrees with the engine's counter",
                {"result": result.l1d_demand_misses,
                 "engine": engine.hierarchy.l1d.demand_stats.measured_misses},
                scope=scope,
            )
        expected_tlb_hits = (
            engine.stlb.measured_prefetch_hits + engine.dtlb.measured_prefetch_hits
        )
        if result.tlb_prefetch_hits != expected_tlb_hits:
            self._fail(
                "result-engine-mismatch",
                "result: tlb_prefetch_hits disagrees with the measured TLB counters",
                {"result": result.tlb_prefetch_hits, "engine": expected_tlb_hits},
                scope=scope,
            )
        counters = {
            name: getattr(result, name)
            for name in ("instructions", "prefetch_fills", "prefetch_useful",
                         "prefetch_useless", "prefetch_late", "pgc_candidates",
                         "pgc_issued", "pgc_discarded", "pgc_useful", "pgc_useless",
                         "demand_walks", "speculative_walks", "tlb_prefetch_hits",
                         "tlb_prefetch_evicted_unused", "dram_reads", "dram_writes",
                         "branches", "branch_mispredicts", "l1d_demand_misses")
        }
        negative = {name: value for name, value in counters.items() if value < 0}
        if negative:
            self._fail(
                "result-nonnegative",
                "result: negative event counters",
                negative,
                scope=scope,
            )
        if result.cycles <= 0 or result.ipc != result.instructions / result.cycles:
            self._fail(
                "result-ipc-consistency",
                "result: ipc != instructions / cycles",
                {"instructions": result.instructions, "cycles": result.cycles,
                 "ipc": result.ipc},
                scope=scope,
            )
