"""Mutation shims: re-introduce fixed bugs to prove the checker catches them.

The validation layer is only trustworthy if a *known* bug trips it.  Each
shim here patches a fixed defect back into the simulator for the duration of
a ``with`` block; the differential suite (and the test suite) then asserts
that a validated run raises :class:`~repro.validate.InvariantViolation`.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from repro.mem.cache import Cache


@contextmanager
def reintroduce_stale_mshr_bug() -> Iterator[None]:
    """Patch :meth:`Cache.in_flight_misses` back to its pre-fix behaviour.

    The original implementation reported the raw MSHR-heap length, which
    includes completed fills awaiting lazy pruning and duplicate entries for
    re-registered lines — so the ``l1d_inflight_misses`` policy feature
    drifted far above the real miss-level parallelism.  A validated run
    under this shim must raise an ``mshr-accounting``
    :class:`InvariantViolation`.
    """
    original = Cache.in_flight_misses

    def buggy(self: Cache, t: float) -> int:
        return len(self._mshr_heap)

    Cache.in_flight_misses = buggy  # type: ignore[method-assign]
    try:
        yield
    finally:
        Cache.in_flight_misses = original  # type: ignore[method-assign]
