"""Benchmark the packed-trace fast path against the generator drive loop.

For every (prefetcher x policy) cell the same simulation runs twice — once
through the historical generator path (``drive``) and once through the
batched fast path (``SimConfig(packed=True)`` -> ``drive_packed``).  Wall
time is the best of ``--repeats`` runs (single runs are noisy); throughput
is reported as trace records per second.  Before any timing is reported the
two paths' :class:`SimResult`\\ s are diffed field by field with the
differential-validation machinery and the script aborts on any mismatch —
the speedup is only meaningful if the answers are bit-identical.

``--grid`` additionally benchmarks whole-grid execution: the same
(workload × policy) cell batch dispatched per-cell to a worker pool with
per-worker packing (the historical parallel grid) versus the
workload-affine scheduler replaying zero-copy shared-memory packs
(``grid_session`` + ``run_cells(shm=True)``).  Both leg's results are
diffed against a serial reference run before any timing is reported.

The kernel-tier benchmark (on by default) races the fused packed kernel
against the vectorized span-skipping tier
(``SimConfig(kernel="vectorized")``) on hit-dominated kernel workloads
plus the main workload, again aborting unless the tiers are bit-identical.

``--sampled`` benchmarks phase-sampled simulation
(:mod:`repro.experiments.sampling`) instead: one full packed run against
the stitched representative reconstruction at paper-like scale (default
200k+2M instructions on mcf), reporting wall-clock speedup next to the
reconstruction's relative IPC error and aborting if the error exceeds the
``SamplingConfig.max_rel_error`` bound.  Writes ``BENCH_0008.json``.

Usage::

    PYTHONPATH=src python scripts/bench_hotloop.py \
        --workload astar --prefetchers berti ipcp bop \
        --policies discard dripper --repeats 3 --grid

Writes a machine-readable summary (default ``BENCH_0006.json`` at the repo
root) so perf regressions are diffable across commits.
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import platform
from concurrent.futures import ProcessPoolExecutor, as_completed
from pathlib import Path
from time import perf_counter

from repro.experiments import RunSpec, format_table
from repro.experiments.parallel import (
    _init_worker,
    _run_chunk_worker,
    cell_for,
    grid_session,
    mix_cell_for,
    run_cells,
    run_mix_cells,
)
from repro.validate import result_diff
from repro.workloads import by_name, clear_pack_cache, get_packed, make_mixes
from repro.cpu.simulator import simulate

REPO_ROOT = Path(__file__).resolve().parents[1]


def _timed(fn):
    """(wall seconds, return value) for one run of fn.

    Garbage is collected before each run so every timing starts from the
    same heap state, but the collector stays ON during the run: allocation
    pressure (and the GC pauses it causes) is a real cost of each path,
    and the production sweep runs with GC enabled.
    """
    gc.collect()
    start = perf_counter()
    value = fn()
    elapsed = perf_counter() - start
    return elapsed, value


def _best_of_interleaved(n: int, fn_a, fn_b):
    """Best wall seconds for two rivals over n interleaved runs each.

    Alternating a/b per repeat samples both paths across the same window
    of background load, so a noisy host biases the ratio far less than
    timing all of a then all of b.  One untimed pair runs first so neither
    rival pays interpreter warm-up (bytecode specialization, branch
    history) inside a timed repeat.

    Returns ``(best_a, value_a, best_b, value_b, ratio)`` where ``ratio``
    is the *median* of the per-pair ``t_a / t_b`` ratios: background load
    shifts both halves of a pair together (so each pair's ratio is far
    more stable than the two column minima, which can land in different
    load windows), and the median rejects the occasional pair that a
    scheduling hiccup split.
    """
    fn_a()
    fn_b()
    best_a = best_b = None
    value_a = value_b = None
    ratios = []
    for _ in range(n):
        t_a, value_a = _timed(fn_a)
        t_b, value_b = _timed(fn_b)
        ratios.append(t_a / t_b)
        if best_a is None or t_a < best_a:
            best_a = t_a
        if best_b is None or t_b < best_b:
            best_b = t_b
    ratios.sort()
    mid = len(ratios) // 2
    ratio = ratios[mid] if len(ratios) % 2 else (ratios[mid - 1] + ratios[mid]) / 2
    return best_a, value_a, best_b, value_b, ratio


def bench_cell(workload, spec: RunSpec, repeats: int) -> dict:
    """Time one (prefetcher, policy) cell both ways; assert equality."""
    config = spec.config_for(workload)
    packed_config = spec.config_for(workload)
    packed_config.packed = True

    # pre-pack so the packed timing measures the drive loop, not trace
    # generation — exactly the steady state of a grid sweep, where one
    # PackedTrace is reused across every cell of the same workload
    packed_trace = get_packed(workload, config.warmup_instructions, config.sim_instructions)
    records = len(packed_trace)

    t_gen, gen_result, t_packed, packed_result, speedup = _best_of_interleaved(
        repeats,
        lambda: simulate(workload, config),
        lambda: simulate(workload, packed_config),
    )

    diffs = result_diff(gen_result, packed_result)
    if diffs:
        parts = "; ".join(f"{k}: {a!r} != {b!r}" for k, (a, b) in diffs.items())
        raise SystemExit(
            f"FAIL: packed result diverged from generator for "
            f"{workload.name}/{spec.prefetcher}/{spec.policy}: {parts}"
        )

    return {
        "prefetcher": spec.prefetcher,
        "policy": spec.policy,
        "records": records,
        "instructions": gen_result.instructions,
        "generator_seconds": t_gen,
        "packed_seconds": t_packed,
        "generator_records_per_sec": records / t_gen,
        "packed_records_per_sec": records / t_packed,
        #: median of per-pair wall-time ratios (see _best_of_interleaved)
        "speedup": speedup,
        "ipc": gen_result.ipc,
    }


def bench_kernel_cell(workload, spec: RunSpec, repeats: int) -> dict:
    """Time the fused vs vectorized packed kernels; assert equality."""
    fused_config = spec.config_for(workload)
    fused_config.packed = True
    vec_config = spec.config_for(workload)
    vec_config.packed = True
    vec_config.kernel = "vectorized"

    packed_trace = get_packed(workload, fused_config.warmup_instructions,
                              fused_config.sim_instructions)
    records = len(packed_trace)

    t_fused, fused_result, t_vec, vec_result, speedup = _best_of_interleaved(
        repeats,
        lambda: simulate(workload, fused_config),
        lambda: simulate(workload, vec_config),
    )

    diffs = result_diff(fused_result, vec_result)
    if diffs:
        parts = "; ".join(f"{k}: {a!r} != {b!r}" for k, (a, b) in diffs.items())
        raise SystemExit(
            f"FAIL: vectorized result diverged from fused for "
            f"{workload.name}/{spec.prefetcher}/{spec.policy}: {parts}"
        )

    return {
        "workload": workload.name,
        "prefetcher": spec.prefetcher,
        "policy": spec.policy,
        "records": records,
        "instructions": fused_result.instructions,
        "fused_seconds": t_fused,
        "vectorized_seconds": t_vec,
        "fused_records_per_sec": records / t_fused,
        "vectorized_records_per_sec": records / t_vec,
        #: median of per-pair wall-time ratios (see _best_of_interleaved)
        "vectorized_speedup": speedup,
        "ipc": fused_result.ipc,
    }


def _legacy_grid(cells, jobs: int):
    """The pre-affine parallel grid: one task per cell, per-worker packing.

    Reproduces the historical dispatch shape — a fresh pool, every cell its
    own task, no shared pack store — so the grid benchmark compares the new
    scheduler against what ``run_cells(jobs=N)`` actually did before.
    """
    results = [None] * len(cells)
    with ProcessPoolExecutor(max_workers=jobs, initializer=_init_worker,
                             initargs=(None, ())) as pool:
        futures = [
            pool.submit(_run_chunk_worker, [(i, cell)], (), False, False)
            for i, cell in enumerate(cells)
        ]
        for future in as_completed(futures):
            for i, result in future.result():
                results[i] = result
    return results


def _shm_grid(cells, jobs: int):
    """The shm + workload-affine grid (a fresh session per run, like a CLI call)."""
    with grid_session(jobs, True):
        return run_cells(cells, jobs=jobs, shm=True)


def bench_grid(workloads, policies, prefetcher: str, warmup: int, sim: int,
               jobs: int, repeats: int) -> dict:
    """Time the whole grid both ways; assert both match a serial reference."""
    spec = RunSpec(prefetcher=prefetcher, warmup_instructions=warmup,
                   sim_instructions=sim)
    cells = [cell_for(by_name(name), spec, policy=policy)
             for name in workloads for policy in policies]
    reference = run_cells(cells, jobs=1)

    t_legacy, legacy_results, t_shm, shm_results, speedup = _best_of_interleaved(
        repeats,
        lambda: _legacy_grid(cells, jobs),
        lambda: _shm_grid(cells, jobs),
    )
    for tag, results in (("legacy", legacy_results), ("shm", shm_results)):
        for cell, got, want in zip(cells, results, reference):
            diffs = result_diff(got, want)
            if diffs:
                parts = "; ".join(f"{k}: {a!r} != {b!r}" for k, (a, b) in diffs.items())
                raise SystemExit(
                    f"FAIL: {tag} grid diverged from serial for "
                    f"{cell.workload}/{cell.policy}: {parts}"
                )

    return {
        "workloads": list(workloads),
        "policies": list(policies),
        "prefetcher": prefetcher,
        "cells": len(cells),
        "jobs": jobs,
        "legacy_seconds": t_legacy,
        "shm_affine_seconds": t_shm,
        #: median of per-pair wall-time ratios (see _best_of_interleaved)
        "speedup": speedup,
    }


def bench_mix(n_mixes: int, cores: int, policies, prefetcher: str,
              warmup: int, sim: int, jobs: int, repeats: int,
              seed: int = 42) -> dict:
    """Time the Fig. 19 mix grid both ways; assert per-core equality.

    Serial generator stepping (``run_mix_cells(jobs=1)``, the historical
    ``simulate_mix`` path) races the mix-affine scheduler dispatching whole
    mixes to ``jobs`` workers on packed cores.  One shared-memory grid
    session stays open across the repeats — the steady state of a 300-mix
    study, where the worker pool and the published packs are paid once and
    amortised over hundreds of mixes — and the untimed warm-up pair inside
    :func:`_best_of_interleaved` is what pays them, so neither leg times
    session setup.  Every core of every mix is diffed between the legs
    before any timing is reported.
    """
    spec = RunSpec(prefetcher=prefetcher, warmup_instructions=warmup,
                   sim_instructions=sim)
    mixes = make_mixes(n_mixes, cores, seed)
    cells = [mix_cell_for(mix, spec, policy=policy, mix_id=i)
             for i, mix in enumerate(mixes) for policy in policies]

    with grid_session(jobs, True):
        t_serial, serial_results, t_packed, packed_results, speedup = _best_of_interleaved(
            repeats,
            lambda: run_mix_cells(cells, jobs=1),
            lambda: run_mix_cells(cells, jobs=jobs),
        )
    for cell, want, got in zip(cells, serial_results, packed_results):
        for core, (a, b) in enumerate(zip(want.results, got.results)):
            diffs = result_diff(a, b)
            if diffs:
                parts = "; ".join(f"{k}: {x!r} != {y!r}" for k, (x, y) in diffs.items())
                raise SystemExit(
                    f"FAIL: packed mix grid diverged from serial generator "
                    f"stepping for mix {cell.mix_id}/{cell.policy} core {core} "
                    f"({a.workload}): {parts}"
                )
    instructions = sum(r.instructions for mix_result in serial_results
                       for r in mix_result.results)
    return {
        "mixes": n_mixes,
        "cores": cores,
        "policies": list(policies),
        "prefetcher": prefetcher,
        "cells": len(cells),
        "jobs": jobs,
        "instructions": instructions,
        "serial_generator_seconds": t_serial,
        "packed_affine_seconds": t_packed,
        "serial_mixes_per_sec": len(cells) / t_serial,
        "packed_mixes_per_sec": len(cells) / t_packed,
        #: median of per-pair wall-time ratios (see _best_of_interleaved)
        "speedup": speedup,
    }


def bench_sampled(workload, prefetcher: str, policy: str, warmup: int,
                  sim: int, sampling, repeats: int) -> dict:
    """Time a full packed run against its phase-sampled reconstruction.

    Both legs replay the same pre-built pack; the sampled leg profiles,
    clusters, and stitches only the representative intervals
    (:mod:`repro.experiments.sampling`).  Unlike the other benchmarks the
    two legs are *not* bit-identical by contract — sampling trades accuracy
    for wall-clock — so instead of a result diff this asserts the
    reconstruction's relative IPC error stays within
    ``sampling.max_rel_error`` of the full run, and reports the error next
    to the speedup.
    """
    from repro.experiments.sampling import plan_phases

    spec = RunSpec(prefetcher=prefetcher, policy=policy,
                   warmup_instructions=warmup, sim_instructions=sim,
                   packed=True)
    full_config = spec.config_for(workload)
    sampled_config = spec.config_for(workload)
    sampled_config.sampling = sampling

    packed_trace = get_packed(workload, warmup, sim)
    plan = plan_phases(packed_trace, warmup, sim, sampling)

    t_full, full_result, t_sampled, sampled_result, speedup = _best_of_interleaved(
        repeats,
        lambda: simulate(workload, full_config),
        lambda: simulate(workload, sampled_config),
    )

    rel_error = abs(sampled_result.ipc - full_result.ipc) / full_result.ipc
    if rel_error > sampling.max_rel_error:
        raise SystemExit(
            f"FAIL: sampled IPC {sampled_result.ipc:.4f} is {rel_error:.2%} "
            f"from the full run's {full_result.ipc:.4f} for {workload.name}/"
            f"{prefetcher}/{policy} — over the {sampling.max_rel_error:.0%} "
            f"bound the SamplingConfig claims"
        )

    return {
        "workload": workload.name,
        "prefetcher": prefetcher,
        "policy": policy,
        "warmup_instructions": warmup,
        "sim_instructions": sim,
        "records": len(packed_trace),
        "intervals": sampling.intervals,
        "phases": len(plan.phases),
        "warmup_fraction": sampling.warmup_fraction,
        "seed": sampling.seed,
        "simulated_instructions": plan.simulated_instructions(),
        "total_instructions": plan.total_instructions,
        "full_seconds": t_full,
        "sampled_seconds": t_sampled,
        #: median of per-pair wall-time ratios (see _best_of_interleaved)
        "speedup": speedup,
        "ipc_full": full_result.ipc,
        "ipc_sampled": sampled_result.ipc,
        "ipc_ci_lo": sampled_result.ipc_ci_lo,
        "ipc_ci_hi": sampled_result.ipc_ci_hi,
        "rel_error": rel_error,
        "max_rel_error": sampling.max_rel_error,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workload", default="astar")
    parser.add_argument("--prefetchers", nargs="+", default=["berti", "ipcp", "bop"])
    parser.add_argument("--policies", nargs="+", default=["discard", "dripper"])
    parser.add_argument("--warmup", type=int, default=20_000)
    parser.add_argument("--sim", type=int, default=60_000)
    parser.add_argument("--repeats", type=int, default=5,
                        help="take the best of N runs per path (default: 5)")
    parser.add_argument("--grid", action="store_true",
                        help="also benchmark whole-grid execution: per-cell "
                             "dispatch vs the shm + workload-affine scheduler")
    parser.add_argument("--grid-workloads", nargs="+",
                        default=["astar", "hmmer", "mcf", "lbm"])
    parser.add_argument("--grid-jobs", type=int, default=2)
    parser.add_argument("--grid-repeats", type=int, default=3,
                        help="interleaved grid repeats (default: 3)")
    parser.add_argument("--kernel-workloads", nargs="+",
                        default=["hot_0", "astar"],
                        help="workloads for the fused-vs-vectorized kernel "
                             "tier benchmark ('' to skip)")
    parser.add_argument("--kernel-sim", type=int, default=240_000,
                        help="measured instructions for the kernel tier "
                             "benchmark (longer than --sim so the per-run "
                             "fixed costs — engine build, result collection "
                             "— do not dilute the drive-loop ratio)")
    parser.add_argument("--out", default=str(REPO_ROOT / "BENCH_0006.json"),
                        help="JSON summary path ('' to skip writing)")
    parser.add_argument("--mix", action="store_true",
                        help="benchmark the multi-core mix grid instead: "
                             "serial generator stepping vs whole mixes "
                             "dispatched to workers on packed cores")
    parser.add_argument("--mix-mixes", type=int, default=2,
                        help="mixes in the mix benchmark grid")
    parser.add_argument("--mix-cores", type=int, default=4,
                        help="cores per mix in the mix benchmark")
    parser.add_argument("--mix-jobs", type=int, default=2,
                        help="worker processes for the packed mix leg")
    parser.add_argument("--mix-warmup", type=int, default=2_000)
    parser.add_argument("--mix-sim", type=int, default=6_000)
    parser.add_argument("--mix-repeats", type=int, default=3,
                        help="interleaved mix-grid repeats")
    parser.add_argument("--mix-out", default=str(REPO_ROOT / "BENCH_0007.json"),
                        help="mix benchmark JSON path ('' to skip writing)")
    parser.add_argument("--sampled", action="store_true",
                        help="benchmark phase-sampled simulation instead: a "
                             "full packed run vs the stitched representative "
                             "reconstruction, reporting speedup + IPC error")
    parser.add_argument("--sampled-workload", default="mcf")
    parser.add_argument("--sampled-policy", default="dripper")
    parser.add_argument("--sampled-warmup", type=int, default=200_000)
    parser.add_argument("--sampled-sim", type=int, default=2_000_000)
    parser.add_argument("--sampled-intervals", type=int, default=64)
    parser.add_argument("--sampled-phases", type=int, default=8)
    parser.add_argument("--sampled-warmup-fraction", type=float, default=0.5)
    parser.add_argument("--sampled-repeats", type=int, default=2,
                        help="interleaved sampled-benchmark repeats (each "
                             "repeat pays one full 2M-instruction run)")
    parser.add_argument("--sampled-out",
                        default=str(REPO_ROOT / "BENCH_0008.json"),
                        help="sampled benchmark JSON path ('' to skip writing)")
    args = parser.parse_args()

    if args.sampled:
        from repro.experiments.sampling import SamplingConfig

        clear_pack_cache()
        sampling = SamplingConfig(intervals=args.sampled_intervals,
                                  phases=args.sampled_phases,
                                  warmup_fraction=args.sampled_warmup_fraction)
        cell = bench_sampled(by_name(args.sampled_workload),
                             args.prefetchers[0], args.sampled_policy,
                             args.sampled_warmup, args.sampled_sim,
                             sampling, args.sampled_repeats)
        print(format_table(
            ["full", "sampled", "speedup", "ipc full", "ipc sampled", "error"],
            [(f"{cell['full_seconds']:.2f}s", f"{cell['sampled_seconds']:.2f}s",
              f"{cell['speedup']:.2f}x", f"{cell['ipc_full']:.4f}",
              f"{cell['ipc_sampled']:.4f}", f"{cell['rel_error']:.2%}")],
            f"phase-sampled: {cell['workload']}/{cell['prefetcher']}/"
            f"{cell['policy']}, {cell['warmup_instructions']}+"
            f"{cell['sim_instructions']} instructions, {cell['intervals']} "
            f"intervals -> {cell['phases']} phases "
            f"(median of {args.sampled_repeats})",
        ))
        if args.sampled_out:
            payload = {
                "benchmark": "sampled-hotloop",
                "python": platform.python_version(),
                "cpus": len(os.sched_getaffinity(0)),
                "repeats": args.sampled_repeats,
                "sampled": cell,
            }
            Path(args.sampled_out).write_text(json.dumps(payload, indent=2) + "\n")
            print(f"\nwrote {args.sampled_out}")
        return 0

    if args.mix:
        clear_pack_cache()
        mix = bench_mix(args.mix_mixes, args.mix_cores, args.policies,
                        args.prefetchers[0], args.mix_warmup, args.mix_sim,
                        args.mix_jobs, args.mix_repeats)
        print(format_table(
            ["cells", "jobs", "serial generator", "packed affine", "speedup"],
            [(str(mix["cells"]), str(mix["jobs"]),
              f"{mix['serial_generator_seconds']:.2f}s",
              f"{mix['packed_affine_seconds']:.2f}s",
              f"{mix['speedup']:.2f}x")],
            f"mix grid: {mix['mixes']} mixes x {mix['cores']} cores x "
            f"{len(mix['policies'])} policies, {mix['prefetcher']} "
            f"(median of {args.mix_repeats})",
        ))
        if args.mix_out:
            payload = {
                "benchmark": "mix-hotloop",
                "python": platform.python_version(),
                #: CPUs the parallel leg actually had — on a 1-CPU runner
                #: the jobs>1 dispatch cannot overlap and the measured
                #: speedup is the fused-stepper serial gain alone
                "cpus": len(os.sched_getaffinity(0)),
                "repeats": args.mix_repeats,
                "mix": mix,
            }
            Path(args.mix_out).write_text(json.dumps(payload, indent=2) + "\n")
            print(f"\nwrote {args.mix_out}")
        return 0

    workload = by_name(args.workload)
    clear_pack_cache()
    cells = []
    for prefetcher in args.prefetchers:
        for policy in args.policies:
            spec = RunSpec(prefetcher=prefetcher, policy=policy,
                           warmup_instructions=args.warmup,
                           sim_instructions=args.sim)
            cells.append(bench_cell(workload, spec, args.repeats))

    rows = [
        (c["prefetcher"], c["policy"],
         f"{c['generator_records_per_sec'] / 1e3:.1f}k",
         f"{c['packed_records_per_sec'] / 1e3:.1f}k",
         f"{c['speedup']:.2f}x")
        for c in cells
    ]
    print(format_table(
        ["prefetcher", "policy", "gen rec/s", "packed rec/s", "speedup"],
        rows,
        f"{workload.name}: generator vs packed drive loop "
        f"(best of {args.repeats}, {args.warmup}+{args.sim} instructions)",
    ))

    payload = {
        "benchmark": "hotloop",
        "workload": workload.name,
        "warmup_instructions": args.warmup,
        "sim_instructions": args.sim,
        "repeats": args.repeats,
        "python": platform.python_version(),
        "cells": cells,
    }

    kernel_names = [n for n in args.kernel_workloads if n]
    if kernel_names:
        # the vectorized tier only engages under the inert prefetcher; the
        # hit-dominated kernel workloads are its design-point cells
        kernel_cells = []
        for name in kernel_names:
            spec = RunSpec(prefetcher="none", policy="discard",
                           warmup_instructions=args.warmup,
                           sim_instructions=args.kernel_sim)
            kernel_cells.append(bench_kernel_cell(by_name(name), spec, args.repeats))
        payload["kernel"] = {
            "prefetcher": "none",
            "policy": "discard",
            "cells": kernel_cells,
        }
        print(format_table(
            ["workload", "fused rec/s", "vectorized rec/s", "speedup"],
            [(c["workload"],
              f"{c['fused_records_per_sec'] / 1e3:.1f}k",
              f"{c['vectorized_records_per_sec'] / 1e3:.1f}k",
              f"{c['vectorized_speedup']:.2f}x")
             for c in kernel_cells],
            f"fused vs vectorized packed kernel "
            f"(best of {args.repeats}, {args.warmup}+{args.kernel_sim} "
            f"instructions)",
        ))

    if args.grid:
        grid = bench_grid(args.grid_workloads, args.policies,
                          args.prefetchers[0], args.warmup, args.sim,
                          args.grid_jobs, args.grid_repeats)
        payload["grid"] = grid
        print(format_table(
            ["cells", "jobs", "per-cell dispatch", "shm + affine", "speedup"],
            [(str(grid["cells"]), str(grid["jobs"]),
              f"{grid['legacy_seconds']:.2f}s",
              f"{grid['shm_affine_seconds']:.2f}s",
              f"{grid['speedup']:.2f}x")],
            f"grid: {len(grid['workloads'])} workloads x {len(grid['policies'])} "
            f"policies, {args.prefetchers[0]} (best of {args.grid_repeats})",
        ))
    if args.out:
        Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"\nwrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
