"""Benchmark the parallel + cached grid-execution layer.

Runs the same (policy x workload) grid three ways and reports wall time:

1. serial (`jobs=1`, no cache) — the historical execution path;
2. parallel (`jobs=N` worker processes);
3. cached re-run (`jobs=N` against a warm cache) — every cell is a hit.

Usage::

    PYTHONPATH=src python scripts/bench_parallel.py --jobs 4 \
        --workloads astar hmmer mcf lbm --policies discard permit dripper

Results are asserted identical across all three paths before timing is
reported, so the speedup never comes at the cost of determinism.
"""

from __future__ import annotations

import argparse
import tempfile
from time import perf_counter

from repro.experiments import ResultCache, RunSpec, format_table, run_policies
from repro.workloads import by_name


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=4)
    parser.add_argument("--workloads", nargs="+",
                        default=["astar", "hmmer", "mcf", "lbm"])
    parser.add_argument("--policies", nargs="+",
                        default=["discard", "permit", "dripper"])
    parser.add_argument("--warmup", type=int, default=20_000)
    parser.add_argument("--sim", type=int, default=60_000)
    args = parser.parse_args()

    workloads = [by_name(name) for name in args.workloads]
    spec = RunSpec(warmup_instructions=args.warmup, sim_instructions=args.sim)
    cells = len(workloads) * len(args.policies)
    print(f"grid: {len(args.policies)} policies x {len(workloads)} workloads "
          f"= {cells} cells, {args.warmup}+{args.sim} instructions each\n")

    start = perf_counter()
    serial = run_policies(workloads, args.policies, base_spec=spec)
    t_serial = perf_counter() - start

    start = perf_counter()
    parallel = run_policies(workloads, args.policies, base_spec=spec, jobs=args.jobs)
    t_parallel = perf_counter() - start
    assert parallel == serial, "parallel results diverged from serial"

    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as cache_dir:
        warm = ResultCache(cache_dir)
        run_policies(workloads, args.policies, base_spec=spec, jobs=args.jobs, cache=warm)
        cached_cache = ResultCache(cache_dir)
        start = perf_counter()
        cached = run_policies(workloads, args.policies, base_spec=spec,
                              jobs=args.jobs, cache=cached_cache)
        t_cached = perf_counter() - start
        assert cached == serial, "cached results diverged from serial"
        assert cached_cache.stats["hits"] == cells

    rows = [
        ("serial (jobs=1)", f"{t_serial:.2f}s", "1.00x"),
        (f"parallel (jobs={args.jobs})", f"{t_parallel:.2f}s",
         f"{t_serial / t_parallel:.2f}x"),
        (f"cached re-run (jobs={args.jobs})", f"{t_cached:.2f}s",
         f"{t_serial / t_cached:.2f}x"),
    ]
    print(format_table(["execution", "wall time", "speedup"], rows,
                       "parallel + cached grid execution"))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
