#!/usr/bin/env python3
"""Full-registry validation: geomeans over ALL seen/unseen workloads.

Runs Berti under Discard/Permit/DRIPPER across the complete 218-workload
seen set (and optionally the 178 unseen), reporting the true geomeans the
bench samples approximate.  Also reports, for a range of sample seeds, how
close each stratified sample's geomean lands to the full-set value — used to
pick the default bench seed (documented in EXPERIMENTS.md).

Takes ~15-40 minutes depending on trace length; writes a JSON summary.
"""

from __future__ import annotations

import argparse
import json
import time

from repro.experiments.metrics import geomean_speedup, speedup_percent
from repro.experiments.runner import RunSpec, run_policies
from repro.workloads import seen_workloads, stratified_sample, unseen_workloads

POLICIES = ("discard", "permit", "dripper")


def run_set(workloads, spec, label):
    t0 = time.time()
    results = run_policies(list(workloads), POLICIES, prefetcher="berti", base_spec=spec)
    base = results["discard"]
    out = {}
    for policy in ("permit", "dripper"):
        out[policy] = speedup_percent(geomean_speedup(results[policy], base))
    per_workload = {
        policy: {
            r.workload: speedup_percent(r.speedup_over(b))
            for r, b in zip(results[policy], base)
        }
        for policy in ("permit", "dripper")
    }
    print(f"[{label}] permit {out['permit']:+.2f}%  dripper {out['dripper']:+.2f}%  "
          f"({len(base)} workloads, {time.time() - t0:.0f}s)")
    return out, per_workload


def seed_representativeness(full_per_workload, pool, n, seeds):
    """Geomean of each candidate sample, computed from the full-set runs."""
    import math

    rows = []
    for seed in seeds:
        sample = {w.name for w in stratified_sample(pool, n, seed)}
        for policy in ("permit", "dripper"):
            gains = [
                1 + full_per_workload[policy][name] / 100
                for name in sample
                if name in full_per_workload[policy]
            ]
            g = 100 * (math.exp(sum(math.log(v) for v in gains) / len(gains)) - 1)
            rows.append((seed, policy, round(g, 2)))
    return rows


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--warmup", type=int, default=12_000)
    parser.add_argument("--sim", type=int, default=36_000)
    parser.add_argument("--skip-unseen", action="store_true")
    parser.add_argument("--out", default="fullset-validation.json")
    parser.add_argument("--sample-size", type=int, default=14)
    parser.add_argument("--seeds", type=int, nargs="*", default=list(range(1, 9)))
    args = parser.parse_args()

    spec = RunSpec(warmup_instructions=args.warmup, sim_instructions=args.sim)
    summary = {}
    seen_out, seen_pw = run_set(seen_workloads(), spec, "seen/218")
    summary["seen"] = seen_out
    print("\nsample representativeness (seen):")
    for seed, policy, g in seed_representativeness(seen_pw, seen_workloads(), args.sample_size, args.seeds):
        print(f"  seed {seed} {policy:8s} {g:+.2f}%")
    summary["seen_per_workload"] = seen_pw

    if not args.skip_unseen:
        unseen_out, unseen_pw = run_set(unseen_workloads(), spec, "unseen/178")
        summary["unseen"] = unseen_out
        summary["unseen_per_workload"] = unseen_pw

    with open(args.out, "w") as fh:
        json.dump(summary, fh, indent=1)
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
