"""Figure 18: unseen workloads (not used during DRIPPER's design).

Paper shape: trends match the seen set — DRIPPER beats both static policies
(+1.2% over Discard, +2.1% over Permit in the paper).
"""

from conftest import bench_scale

from repro.experiments import fig18_unseen, format_distribution


def test_fig18_unseen(benchmark):
    scale = bench_scale(n_workloads=14)
    data = benchmark.pedantic(lambda: fig18_unseen(scale), rounds=1, iterations=1)
    print()
    print(f"Figure 18 — unseen workloads: permit {data['permit_pct']:+.2f}%, "
          f"dripper {data['dripper_pct']:+.2f}% (geomean over Discard)")
    print(f"dripper per-workload deciles: "
          f"{format_distribution(data['per_workload_dripper_pct'])}")
    benchmark.extra_info["permit_pct"] = round(data["permit_pct"], 2)
    benchmark.extra_info["dripper_pct"] = round(data["dripper_pct"], 2)

    assert data["dripper_pct"] > data["permit_pct"] + 0.5, (
        "DRIPPER must clearly beat always-permitting on unseen workloads"
    )
    assert data["dripper_pct"] > -0.3, "DRIPPER must not lose to Discard on unseen workloads"
