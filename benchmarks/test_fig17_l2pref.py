"""Figure 17: impact of L2C prefetching on DRIPPER's gains.

Paper shape: DRIPPER beats Permit and Discard under every L2 prefetcher
(None / SPP / IPCP / BOP); its margin is largest with no L2 prefetcher.
"""

from conftest import bench_scale

from repro.experiments import fig17_l2_prefetchers, format_table


def test_fig17_l2_prefetchers(benchmark):
    scale = bench_scale(n_workloads=10)
    data = benchmark.pedantic(lambda: fig17_l2_prefetchers(scale), rounds=1, iterations=1)
    rows = [
        (l2, f"{vals['permit_pct']:+.2f}%", f"{vals['dripper_pct']:+.2f}%")
        for l2, vals in data.items()
    ]
    print()
    print(format_table(["L2 prefetcher", "permit", "dripper"], rows, "Figure 17"))
    for l2, vals in data.items():
        benchmark.extra_info[l2] = {k: round(v, 2) for k, v in vals.items()}

    for l2, vals in data.items():
        assert vals["dripper_pct"] > vals["permit_pct"], f"under L2={l2}"
        # sampling tolerance: DRIPPER must never lose materially to Discard
        assert vals["dripper_pct"] > -0.5, f"DRIPPER should not lose to Discard under L2={l2}"
