"""Perf smoke: the packed fast path stays bit-identical and does not regress.

Result equality is asserted hard — the fast path's whole contract is that
``SimConfig(packed=True)`` changes wall time and nothing else.  Throughput is
advisory: a single CI run is far too noisy to gate a merge on the measured
ratio (see ``scripts/bench_hotloop.py`` for the careful methodology), so the
only hard floor here is a generous one that catches the fast path becoming
*slower* than the generator it replaces.  Phase-sampled simulation is the
one exception with a hard *accuracy* gate: its recorded ``BENCH_0008.json``
artifact must clear the ≥5x-at-≤2%-IPC-error acceptance bar, and the live
reduced-scale race bounds the reconstruction error hard while keeping the
wall-clock floor generous.
"""

from time import perf_counter

from repro.experiments import RunSpec
from repro.cpu.simulator import simulate
from repro.validate import result_diff
from repro.workloads import by_name, get_packed


def _best_of(n, fn):
    best = None
    value = None
    for _ in range(n):
        start = perf_counter()
        value = fn()
        elapsed = perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best, value


class TestPackedFastPath:
    def run_cell(self, prefetcher, policy, warmup=8_000, sim=24_000):
        workload = by_name("astar")
        spec = RunSpec(prefetcher=prefetcher, policy=policy,
                       warmup_instructions=warmup, sim_instructions=sim)
        config = spec.config_for(workload)
        packed_config = spec.config_for(workload)
        packed_config.packed = True
        get_packed(workload, warmup, sim)  # pre-pack (steady-state timing)
        t_gen, gen_result = _best_of(2, lambda: simulate(workload, config))
        t_packed, packed_result = _best_of(2, lambda: simulate(workload, packed_config))
        return t_gen, gen_result, t_packed, packed_result

    def test_default_cell_identical_and_not_slower(self):
        t_gen, gen_result, t_packed, packed_result = self.run_cell("berti", "discard")
        assert result_diff(gen_result, packed_result) == {}
        # advisory floor only: the fast path must at minimum not lose to the
        # generator path it bypasses (true speedup is ~1.5x+, but CI noise
        # makes a tight ratio assertion flaky)
        assert t_packed < t_gen * 1.10

    def test_dripper_cell_identical(self):
        _, gen_result, _, packed_result = self.run_cell("ipcp", "dripper")
        assert result_diff(gen_result, packed_result) == {}


class TestTelemetryOffOverhead:
    """The telemetry layer (PR 6) must cost nothing when it is not enabled.

    ``BENCH_0005.json`` captured the packed-vs-generator speedup per cell
    before the metrics/tracing instrumentation landed.  With no tracer
    installed and nobody reading the registry, the packed fast path should
    still clear a generous fraction of that recorded speedup — the
    instrumentation sits at event granularity (per drive, per pack), so any
    per-record cost showing up here means a hot loop grew an observation.
    """

    # a single CI run is noisy; demand only half the recorded speedup, and
    # never below break-even
    MARGIN = 0.5

    def _baseline(self):
        import json
        from pathlib import Path

        doc = json.loads(
            (Path(__file__).resolve().parent.parent / "BENCH_0005.json").read_text())
        return {(c["prefetcher"], c["policy"]): c["speedup"] for c in doc["cells"]}

    def test_no_tracer_is_installed_by_default(self):
        from repro.obs.tracing import current_tracer

        assert current_tracer() is None

    def test_packed_speedup_holds_without_telemetry(self):
        from repro.obs.tracing import current_tracer

        assert current_tracer() is None  # telemetry off: the path under test
        baseline = self._baseline()
        cell = TestPackedFastPath()
        for prefetcher, policy in (("berti", "discard"), ("berti", "dripper")):
            t_gen, gen_result, t_packed, packed_result = cell.run_cell(
                prefetcher, policy)
            assert result_diff(gen_result, packed_result) == {}
            recorded = baseline[(prefetcher, policy)]
            floor = max(1.0, recorded * self.MARGIN)
            measured = t_gen / t_packed
            assert measured > floor, (
                f"{prefetcher}/{policy}: packed speedup {measured:.2f}x fell "
                f"below {floor:.2f}x (BENCH_0005 recorded {recorded:.2f}x) — "
                "telemetry-off overhead on the fast path?")


class TestMixThroughput:
    """The mix-affine grid (PR 9) must stay exact and stay fast.

    ``BENCH_0007.json`` records the speedup of whole mixes dispatched to
    workers on packed cores over serial generator stepping (the historical
    ``simulate_mix`` path) at jobs=2.  Per-core equality is the hard
    contract; the throughput floor is the same generous half-of-recorded
    used above — enough to catch the packed mix loop or the mix scheduler
    regressing to serial-generator speed without gating merges on CI noise.
    """

    MARGIN = 0.5

    def _baseline(self):
        import json
        from pathlib import Path

        doc = json.loads(
            (Path(__file__).resolve().parent.parent / "BENCH_0007.json").read_text())
        return doc["mix"]

    def test_mix_grid_identical_and_fast(self):
        from repro.experiments.parallel import (
            grid_session,
            mix_cell_for,
            run_mix_cells,
        )
        from repro.workloads import make_mixes

        recorded = self._baseline()
        spec = RunSpec(prefetcher=recorded["prefetcher"],
                       warmup_instructions=2_000, sim_instructions=6_000)
        mixes = make_mixes(2, 4, seed=42)
        cells = [mix_cell_for(mix, spec, policy=policy, mix_id=i)
                 for i, mix in enumerate(mixes)
                 for policy in ("discard", "dripper")]

        def packed_grid():
            with grid_session(2, True):
                return run_mix_cells(cells, jobs=2)

        t_serial, serial = _best_of(2, lambda: run_mix_cells(cells, jobs=1))
        t_packed, packed = _best_of(2, packed_grid)
        for want, got in zip(serial, packed):
            for a, b in zip(want.results, got.results):
                assert result_diff(a, b) == {}
        floor = max(1.0, recorded["speedup"] * self.MARGIN)
        measured = t_serial / t_packed
        assert measured > floor, (
            f"mix grid speedup {measured:.2f}x fell below {floor:.2f}x "
            f"(BENCH_0007 recorded {recorded['speedup']:.2f}x at "
            f"jobs={recorded['jobs']}) — packed mix loop or mix-affine "
            "scheduling regressed?")


class TestVectorizedKernelTier:
    """The vectorized drive kernel (PR 7) must stay exact and stay fast.

    ``BENCH_0006.json`` records the fused-vs-vectorized speedup per kernel
    cell at the tier's design point (long, hit-dominated packed traces).
    Equality is the hard contract; the throughput floor is the same generous
    half-of-recorded used for the telemetry smoke — enough to catch the
    span-skipping scan degenerating into per-record stepping without gating
    merges on CI timing noise.
    """

    MARGIN = 0.5

    def _baseline(self):
        import json
        from pathlib import Path

        doc = json.loads(
            (Path(__file__).resolve().parent.parent / "BENCH_0006.json").read_text())
        return {c["workload"]: c["vectorized_speedup"]
                for c in doc["kernel"]["cells"]}

    def test_hit_dominated_cell_identical_and_fast(self):
        workload = by_name("hot_0")
        warmup, sim = 8_000, 120_000
        spec = RunSpec(prefetcher="none", policy="discard",
                       warmup_instructions=warmup, sim_instructions=sim)
        fused_config = spec.config_for(workload)
        fused_config.packed = True
        vec_config = spec.config_for(workload)
        vec_config.packed = True
        vec_config.kernel = "vectorized"
        get_packed(workload, warmup, sim)  # pre-pack (steady-state timing)
        t_fused, fused_result = _best_of(2, lambda: simulate(workload, fused_config))
        t_vec, vec_result = _best_of(2, lambda: simulate(workload, vec_config))
        assert result_diff(fused_result, vec_result) == {}
        recorded = self._baseline()["hot_0"]
        floor = max(1.0, recorded * self.MARGIN)
        measured = t_fused / t_vec
        assert measured > floor, (
            f"hot_0: vectorized speedup {measured:.2f}x fell below "
            f"{floor:.2f}x (BENCH_0006 recorded {recorded:.2f}x) — is the "
            "span scan bailing to per-record stepping?")


class TestSampledSimulation:
    """Phase-sampled simulation (PR 10) must stay fast *and* stay honest.

    ``BENCH_0008.json`` records the sampled-vs-full race at paper-like scale
    (200k+2M instructions): the recorded artifact itself is gated hard —
    ≥5x wall-clock at ≤2% relative IPC error is the feature's acceptance
    bar, so a regenerated benchmark that misses it should fail CI.  The live
    leg re-races a reduced-scale cell: the error bound stays hard (accuracy
    does not get noisier on a loaded host), while the speedup floor is the
    usual generous fraction of what the reduced scale can deliver.
    """

    MARGIN = 0.5

    def _baseline(self):
        import json
        from pathlib import Path

        doc = json.loads(
            (Path(__file__).resolve().parent.parent / "BENCH_0008.json").read_text())
        return doc["sampled"]

    def test_recorded_artifact_meets_acceptance(self):
        recorded = self._baseline()
        assert recorded["sim_instructions"] >= 2_000_000
        assert recorded["speedup"] >= 5.0, (
            f"BENCH_0008 records only {recorded['speedup']:.2f}x — the "
            "sampled path no longer clears the 5x acceptance bar")
        assert recorded["rel_error"] <= 0.02, (
            f"BENCH_0008 records {recorded['rel_error']:.2%} IPC error — "
            "over the 2% acceptance bound")
        # the reconstruction simulates a small fraction of the trace; that
        # ratio is where the speedup comes from
        assert recorded["simulated_instructions"] * 3 < recorded["total_instructions"]

    def test_reduced_scale_sampled_fast_and_accurate(self):
        from repro.experiments.sampling import SamplingConfig

        recorded = self._baseline()
        workload = by_name(recorded["workload"])
        warmup, sim = 8_000, 200_000
        spec = RunSpec(prefetcher=recorded["prefetcher"],
                       policy=recorded["policy"],
                       warmup_instructions=warmup, sim_instructions=sim,
                       packed=True)
        full_config = spec.config_for(workload)
        sampled_config = spec.config_for(workload)
        sampled_config.sampling = SamplingConfig(
            intervals=32, phases=6,
            warmup_fraction=recorded["warmup_fraction"])
        get_packed(workload, warmup, sim)  # pre-pack (steady-state timing)
        t_full, full_result = _best_of(2, lambda: simulate(workload, full_config))
        t_sampled, sampled_result = _best_of(
            2, lambda: simulate(workload, sampled_config))
        rel_error = abs(sampled_result.ipc - full_result.ipc) / full_result.ipc
        assert rel_error <= 0.05, (
            f"sampled IPC {sampled_result.ipc:.4f} is {rel_error:.2%} from "
            f"the full run's {full_result.ipc:.4f} at reduced scale — "
            "reconstruction bias crept in")
        measured = t_full / t_sampled
        assert measured > 1.5, (
            f"sampled speedup {measured:.2f}x at reduced scale — profiling/"
            "clustering overhead is eating the skipped-span savings "
            f"(BENCH_0008 recorded {recorded['speedup']:.2f}x at full scale)")
