"""Section III-D3: the offline feature-selection procedure behind Table II.

Runs the greedy selection for Berti on a reduced candidate list and a small
workload sample.  Paper shape: a Delta-based program feature should rank at
or near the top, and the selected set should beat Discard PGC.
"""

from repro.core.selection import select_features
from repro.workloads import seen_workloads, stratified_sample

#: reduced candidate list (full: 55 program + 6 system features)
PROGRAM_CANDIDATES = ("Delta", "PC^Delta", "PC", "VA>>12", "CacheLineOffset")
SYSTEM_CANDIDATES = ("sTLB MPKI", "sTLB Miss Rate", "LLC Miss Rate")


def test_feature_selection(benchmark):
    workloads = stratified_sample(seen_workloads(), 6, seed=3)
    report = benchmark.pedantic(
        lambda: select_features(
            "berti", workloads,
            program_candidates=PROGRAM_CANDIDATES,
            system_candidates=SYSTEM_CANDIDATES,
            warmup_instructions=8_000,
            sim_instructions=24_000,
        ),
        rounds=1, iterations=1,
    )
    print()
    print("Feature selection (berti) — single-feature ranking:")
    for score in report.scores:
        kind = "system " if score.is_system else "program"
        print(f"  {kind} {score.name:20s} {100 * (score.speedup - 1):+.2f}%")
    print(f"selected: program={report.selected_program} system={report.selected_system}")
    print(f"final geomean speedup: {100 * (report.final_speedup - 1):+.2f}%")
    benchmark.extra_info["selected_program"] = report.selected_program
    benchmark.extra_info["selected_system"] = report.selected_system
    benchmark.extra_info["final_pct"] = round(100 * (report.final_speedup - 1), 2)

    ranked = [s.name for s in report.scores]
    delta_rank = min(ranked.index("Delta"), ranked.index("PC^Delta"))
    assert delta_rank <= 2, "a Delta-based feature should rank near the top (Table II)"
    assert report.final_speedup > 1.0
    assert report.selected_program or report.selected_system
