"""Feature zoo: every Table I program feature as a single-feature filter.

Extends Figure 14's comparison to the full Table I set (the paper reports
only the selected subset).  Shape: the Delta-family features dominate, PC-
and VA-derived features land in the middle, and no single feature should
catastrophically lose to Discard — the filter's conservative default plus
vUB bootstrap protect even poorly-correlated features.
"""

from dataclasses import replace

from conftest import bench_scale

from repro.core.features import TABLE_I_FEATURES
from repro.core.filter import single_feature_filter
from repro.cpu.simulator import simulate
from repro.experiments import format_table, geomean_speedup, run_many, speedup_percent
from repro.experiments.runner import RunSpec
from repro.workloads import seen_workloads, stratified_sample

#: Delta variants from the wider space, evaluated alongside Table I
EXTRA_FEATURES = ("Delta",)


def run_zoo(scale):
    workloads = stratified_sample(seen_workloads(), scale.n_workloads, scale.seed)
    spec = RunSpec(
        prefetcher="berti",
        warmup_instructions=scale.warmup_instructions,
        sim_instructions=scale.sim_instructions,
    )
    base = run_many(workloads, replace(spec, policy="discard"))
    out = {}
    for feature_name in EXTRA_FEATURES + TABLE_I_FEATURES:
        results = []
        for workload in workloads:
            config = replace(
                spec.config_for(workload),
                policy_factory=lambda: single_feature_filter(feature_name),
            )
            results.append(simulate(workload, config))
        out[feature_name] = speedup_percent(geomean_speedup(results, base))
    return out


def test_feature_zoo(benchmark):
    scale = bench_scale(n_workloads=6)
    data = benchmark.pedantic(lambda: run_zoo(scale), rounds=1, iterations=1)
    ranked = sorted(data.items(), key=lambda kv: -kv[1])
    print()
    print(format_table(
        ["single program feature", "geomean vs Discard"],
        [(name, f"{pct:+.2f}%") for name, pct in ranked],
        "Feature zoo — every Table I feature as a lone filter",
    ))
    benchmark.extra_info["top3"] = [name for name, _ in ranked[:3]]
    benchmark.extra_info["bottom"] = ranked[-1][0]

    values = list(data.values())
    # no single feature collapses: the conservative default bounds the loss
    assert min(values) > -3.0, f"worst feature lost badly: {ranked[-1]}"
    # at least one delta-informed feature must carry real signal
    delta_family = [pct for name, pct in data.items() if "Delta" in name]
    assert max(delta_family) >= max(values) - 0.5
