"""Sensitivity: DRIPPER's gains vs sTLB size.

Page-cross prefetching interacts with TLB reach: with a tiny sTLB,
speculative walks are frequent (higher risk, higher reward); with a huge
sTLB translations are mostly resident and the TLB-side benefit shrinks.
The filter should deliver gains across the sweep and never lose badly.
"""

from conftest import bench_scale

from repro.experiments import format_table
from repro.experiments.runner import RunSpec
from repro.experiments.sweep import stlb_size_transform, sweep_parameter
from repro.workloads import seen_workloads, stratified_sample

#: sTLB sizes (entries, 12-way): quarter / half / paper / double
STLB_SIZES = (384, 768, 1536, 3072)


def test_sensitivity_stlb_size(benchmark):
    scale = bench_scale(n_workloads=6)
    workloads = stratified_sample(seen_workloads(), scale.n_workloads, scale.seed)
    spec = RunSpec(
        prefetcher="berti",
        warmup_instructions=scale.warmup_instructions,
        sim_instructions=scale.sim_instructions,
    )
    data = benchmark.pedantic(
        lambda: sweep_parameter(workloads, stlb_size_transform, STLB_SIZES, base_spec=spec),
        rounds=1, iterations=1,
    )
    rows = [
        (entries, f"{vals['permit']:+.2f}%", f"{vals['dripper']:+.2f}%")
        for entries, vals in data.items()
    ]
    print()
    print(format_table(["sTLB entries", "permit", "dripper"], rows, "Sensitivity — sTLB size"))
    for entries, vals in data.items():
        benchmark.extra_info[str(entries)] = {k: round(v, 2) for k, v in vals.items()}

    for entries, vals in data.items():
        assert vals["dripper"] >= vals["permit"] - 0.3, f"sTLB={entries}"
        assert vals["dripper"] > -1.0, f"sTLB={entries}: DRIPPER must not lose badly"
