"""TLB warming by page-cross prefetches (the paper's second mechanism).

Section II-A: accurate page-cross prefetching "reduces the number of TLB
misses by prefetching address translations in the TLB ahead of demand
memory accesses".  This bench isolates that mechanism on page-cross
friendly workloads: speculative walks install tagged translations, and we
count how many demand accesses later hit them.
"""

from conftest import bench_scale

from repro.experiments import average, format_table, run_policies
from repro.workloads import by_name

#: canonical page-cross-friendly workloads (Figure 2's winners)
FRIENDLY = ("libquantum", "bwaves", "cc.road", "tc.road", "qmm_int_365", "vips")


def run_warming(scale):
    workloads = [by_name(name) for name in FRIENDLY]
    res = run_policies(
        workloads, ["discard", "permit", "dripper"], prefetcher="berti",
        base_spec=scale.spec(),
    )
    rows = []
    for r_discard, r_permit, r_dripper in zip(res["discard"], res["permit"], res["dripper"]):
        rows.append({
            "workload": r_discard.workload,
            "dtlb_mpki_discard": r_discard.dtlb_mpki,
            "dtlb_mpki_permit": r_permit.dtlb_mpki,
            "dtlb_mpki_dripper": r_dripper.dtlb_mpki,
            "tlb_prefetch_hits_permit": r_permit.tlb_prefetch_hits,
            "tlb_prefetch_hits_dripper": r_dripper.tlb_prefetch_hits,
            "spec_walks_dripper": r_dripper.speculative_walks,
        })
    return rows


def test_tlb_warming(benchmark):
    scale = bench_scale(n_workloads=6)
    rows = benchmark.pedantic(lambda: run_warming(scale), rounds=1, iterations=1)
    print()
    print(format_table(
        ["workload", "dTLB MPKI (disc)", "(permit)", "(dripper)", "tlb pf-hits (dripper)", "spec walks"],
        [
            (r["workload"], f"{r['dtlb_mpki_discard']:.2f}", f"{r['dtlb_mpki_permit']:.2f}",
             f"{r['dtlb_mpki_dripper']:.2f}", r["tlb_prefetch_hits_dripper"], r["spec_walks_dripper"])
            for r in rows
        ],
        "TLB warming on page-cross friendly workloads",
    ))
    benchmark.extra_info["avg_dtlb_discard"] = round(average(r["dtlb_mpki_discard"] for r in rows), 3)
    benchmark.extra_info["avg_dtlb_dripper"] = round(average(r["dtlb_mpki_dripper"] for r in rows), 3)

    # DRIPPER's speculative walks warm the TLBs: demand hits on prefetched
    # translations occur, and dTLB MPKI drops vs Discard on average
    assert sum(r["tlb_prefetch_hits_dripper"] for r in rows) > 0
    assert average(r["dtlb_mpki_dripper"] for r in rows) < average(r["dtlb_mpki_discard"] for r in rows)
    # the warming benefit tracks Permit's (DRIPPER doesn't filter it away)
    assert average(r["dtlb_mpki_dripper"] for r in rows) <= average(r["dtlb_mpki_permit"] for r in rows) * 1.5 + 0.1
