"""Ablation: can prefetch-aware cache insertion substitute for filtering?

The related-work section (§VI, "Prefetch Management") lists policies that
make the *cache* prefetch-aware ([43], [74], [91]) instead of filtering the
prefetches.  This bench contrasts the two mitigations: prefetch-aware LRU
insertion (PACMan-style) limits cache pollution from useless page-cross
prefetches but cannot prevent the speculative page walks or the TLB
pollution — the costs the paper's filter uniquely removes.

Expected shape: Permit+pa-lru recovers part of Permit's loss; DRIPPER (with
plain LRU) still wins.
"""

from dataclasses import replace as dc_replace

from conftest import bench_scale

from repro.cpu.simulator import simulate
from repro.experiments import format_table, geomean_speedup, speedup_percent
from repro.experiments.runner import RunSpec, policy_factory
from repro.params import DEFAULT_PARAMS
from repro.workloads import seen_workloads, stratified_sample


def _params_with_replacement(name: str):
    return dc_replace(DEFAULT_PARAMS, l1d=dc_replace(DEFAULT_PARAMS.l1d, replacement=name))


def run_ablation(scale):
    workloads = stratified_sample(seen_workloads(), scale.n_workloads, scale.seed)
    spec = RunSpec(
        prefetcher="berti",
        warmup_instructions=scale.warmup_instructions,
        sim_instructions=scale.sim_instructions,
    )

    def run_config(policy: str, replacement: str):
        results = []
        for workload in workloads:
            config = spec.config_for(workload)
            config = dc_replace(
                config,
                params=_params_with_replacement(replacement),
                policy_factory=policy_factory(policy, "berti"),
            )
            results.append(simulate(workload, config))
        return results

    base = run_config("discard", "lru")
    out = {}
    for label, policy, replacement in (
        ("permit + lru", "permit", "lru"),
        ("permit + pa-lru", "permit", "pa-lru"),
        ("dripper + lru", "dripper", "lru"),
        ("dripper + pa-lru", "dripper", "pa-lru"),
    ):
        out[label] = speedup_percent(geomean_speedup(run_config(policy, replacement), base))
    return out


def test_ablation_replacement(benchmark):
    scale = bench_scale(n_workloads=8)
    data = benchmark.pedantic(lambda: run_ablation(scale), rounds=1, iterations=1)
    print()
    print(format_table(
        ["configuration", "geomean vs Discard+LRU"],
        [(k, f"{v:+.2f}%") for k, v in data.items()],
        "Ablation — prefetch-aware insertion vs page-cross filtering",
    ))
    benchmark.extra_info.update({k: round(v, 2) for k, v in data.items()})

    # insertion policy alone must not replace filtering
    assert data["dripper + lru"] > data["permit + pa-lru"], (
        "filtering removes walk/TLB costs that insertion policies cannot"
    )
    assert data["dripper + lru"] > data["permit + lru"]
