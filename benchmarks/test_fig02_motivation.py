"""Figure 2: IPC gain of Permit PGC over Discard PGC, per workload.

Paper shape: gains vary per workload between roughly -20% and +25%; no
static policy wins everywhere.  astar/cc.road/MIS/vips-style workloads gain,
sphinx3/fotonik3d_s/bc.web-style workloads lose.
"""

from conftest import bench_scale

from repro.experiments import fig2_motivation_ipc, format_table


def test_fig02_motivation(benchmark):
    scale = bench_scale(n_workloads=13)
    data = benchmark.pedantic(lambda: fig2_motivation_ipc(scale), rounds=1, iterations=1)
    for prefetcher, block in data.items():
        rows = [(name, f"{pct:+.1f}%") for name, pct in block["per_workload_pct"]]
        print()
        print(format_table(["workload", "permit vs discard"], rows, f"Figure 2 — {prefetcher}"))
        print(f"geomean: {block['geomean_pct']:+.2f}%")
        benchmark.extra_info[f"{prefetcher}_geomean_pct"] = round(block["geomean_pct"], 2)

    # Shape: both signs must appear for every prefetcher (no static winner).
    # The hostile bar is lower for BOP/IPCP: they issue fewer page-cross
    # prefetches than Berti, so their downside spread is smaller (the paper's
    # Figure 2 shows the same compression).
    for prefetcher, block in data.items():
        gains = [pct for _, pct in block["per_workload_pct"]]
        hostile_bar = -1.0 if prefetcher == "berti" else -0.3
        assert any(g > 0.5 for g in gains), f"{prefetcher}: no workload gains from page-crossing"
        assert any(g < hostile_bar for g in gains), f"{prefetcher}: no workload hurt by page-crossing"
