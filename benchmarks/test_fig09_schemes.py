"""Figure 9: geomean IPC of all page-cross schemes over Discard PGC.

Paper shape (all three prefetchers): DRIPPER highest; Discard PGC (0 line)
beats Permit PGC; Discard PTW between Permit and Discard; ISO ~ Permit;
PPF/PPF+Dthr do not beat Discard.
"""

from conftest import bench_scale

from repro.experiments import fig9_scheme_comparison, format_scheme_comparison


def test_fig09_schemes(benchmark):
    scale = bench_scale(n_workloads=12)
    data = benchmark.pedantic(lambda: fig9_scheme_comparison(scale), rounds=1, iterations=1)
    print()
    print(format_scheme_comparison(data, "Figure 9 — geomean IPC speedup over Discard PGC"))
    for prefetcher, row in data.items():
        for policy, pct in row.items():
            benchmark.extra_info[f"{prefetcher}/{policy}"] = round(pct, 2)

    for prefetcher, row in data.items():
        # DRIPPER is the best scheme (small-sample noise tolerance 0.3%)
        assert row["dripper"] >= max(v for k, v in row.items() if k != "dripper") - 0.3, prefetcher
        # DRIPPER beats always-permitting and never loses to the baseline
        assert row["dripper"] > row["permit"], prefetcher
        assert row["dripper"] > -0.3, f"{prefetcher}: DRIPPER must not lose to Discard PGC"
    # for the flagship prefetcher the gain must be clearly positive
    assert data["berti"]["dripper"] > 0
