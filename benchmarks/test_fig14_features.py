"""Figure 14: DRIPPER vs its constituent single-feature filters.

Paper shape: the combined filter beats each of Delta / sTLB MPKI /
sTLB Miss Rate used alone.
"""

from conftest import bench_scale

from repro.experiments import fig14_single_features, format_table


def test_fig14_single_features(benchmark):
    scale = bench_scale(n_workloads=10)
    data = benchmark.pedantic(lambda: fig14_single_features(scale), rounds=1, iterations=1)
    rows = [(name, f"{pct:+.2f}%") for name, pct in data.items()]
    print()
    print(format_table(["filter", "geomean vs Discard"], rows, "Figure 14"))
    benchmark.extra_info.update({k: round(v, 2) for k, v in data.items()})

    singles = [v for k, v in data.items() if k.startswith("single:")]
    # at bench sample sizes the best single feature can edge the combination
    # by a few tenths of a percent (noise); the combination must stay close
    assert data["dripper"] >= max(singles) - 0.6, (
        "combining features should not lose materially to the best single feature"
    )
    assert data["dripper"] > 0
    assert data["dripper"] > min(singles), "the combination must beat the weakest constituent"
