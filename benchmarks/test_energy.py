"""Energy impact of the page-cross policies (Section II-A motivation).

The paper motivates filtering partly by the dynamic energy of useless
page-cross prefetches (up to 5 useless memory accesses each).  Expected
shape: Permit spends the most energy per kilo-instruction; DRIPPER's energy
is near Discard's while delivering better performance, so DRIPPER wins on
energy-delay product.
"""

from conftest import bench_scale

from repro.experiments import format_table, geomean, run_policies
from repro.experiments.energy import energy_delay_product, energy_per_ki
from repro.workloads import seen_workloads, stratified_sample


def run_energy(scale):
    workloads = stratified_sample(seen_workloads(), scale.n_workloads, scale.seed)
    res = run_policies(
        workloads, ["discard", "permit", "dripper"], prefetcher="berti",
        base_spec=scale.spec(),
    )
    out = {}
    for policy in ("discard", "permit", "dripper"):
        out[policy] = {
            "energy_nj_per_ki": geomean([max(energy_per_ki(r), 1e-9) for r in res[policy]]),
            "edp": geomean([max(energy_delay_product(r), 1e-9) for r in res[policy]]),
        }
    return out


def test_energy_policies(benchmark):
    scale = bench_scale(n_workloads=10)
    data = benchmark.pedantic(lambda: run_energy(scale), rounds=1, iterations=1)
    rows = [
        (policy, f"{vals['energy_nj_per_ki']:.1f}", f"{vals['edp']:.1f}")
        for policy, vals in data.items()
    ]
    print()
    print(format_table(["policy", "nJ/KI (geomean)", "EDP (geomean)"], rows,
                       "Energy impact of page-cross policies"))
    for policy, vals in data.items():
        benchmark.extra_info[policy] = {k: round(v, 2) for k, v in vals.items()}

    # DRIPPER's EDP beats always-permitting (saves both time and energy)
    assert data["dripper"]["edp"] <= data["permit"]["edp"] * 1.01
    # and its energy overhead over Discard stays modest
    assert data["dripper"]["energy_nj_per_ki"] <= data["discard"]["energy_nj_per_ki"] * 1.25
