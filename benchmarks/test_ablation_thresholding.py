"""Ablation: MOKA's adaptive thresholding vs static thresholds.

Design-choice check (Section III-C3): the epoch-based adaptive scheme should
match or beat every static threshold across a mixed sample, because
different workloads/phases have different optimal T_a values.
"""

from conftest import bench_scale

from repro.core.dripper import dripper_config
from repro.core.filter import FilterConfig, PerceptronFilter
from repro.experiments import format_table, geomean_speedup, run_many, speedup_percent
from repro.experiments.runner import RunSpec
from repro.workloads import seen_workloads, stratified_sample

from dataclasses import replace


def run_ablation(scale):
    workloads = stratified_sample(seen_workloads(), scale.n_workloads, scale.seed)
    spec = RunSpec(
        prefetcher="berti",
        warmup_instructions=scale.warmup_instructions,
        sim_instructions=scale.sim_instructions,
    )
    base = run_many(workloads, replace(spec, policy="discard"))
    out = {}

    def run_filter(name, config):
        from repro.cpu.simulator import simulate

        results = []
        for workload in workloads:
            cfg = replace(spec.config_for(workload), policy_factory=lambda: PerceptronFilter(config, name=name))
            results.append(simulate(workload, cfg))
        out[name] = speedup_percent(geomean_speedup(results, base))

    adaptive = dripper_config("berti")
    run_filter("adaptive", adaptive)
    for threshold in (-4, 0, 4, 8):
        static = FilterConfig(
            program_features=adaptive.program_features,
            system_features=adaptive.system_features,
            adaptive=False,
            static_threshold=threshold,
        )
        run_filter(f"static({threshold:+d})", static)
    return out


def test_ablation_thresholding(benchmark):
    scale = bench_scale(n_workloads=8)
    data = benchmark.pedantic(lambda: run_ablation(scale), rounds=1, iterations=1)
    print()
    print(format_table(
        ["threshold policy", "geomean vs Discard"],
        [(k, f"{v:+.2f}%") for k, v in data.items()],
        "Ablation — adaptive vs static thresholds",
    ))
    benchmark.extra_info.update({k: round(v, 2) for k, v in data.items()})
    statics = [v for k, v in data.items() if k.startswith("static")]
    assert data["adaptive"] >= max(statics) - 0.5, (
        "adaptive thresholding should be competitive with the best static choice"
    )
