"""Figure 11: miss coverage (top) and prefetch accuracy (bottom).

Paper shape: DRIPPER matches Permit PGC's coverage (~same gain over Discard)
while beating it clearly on accuracy (Permit *reduces* accuracy vs Discard,
DRIPPER does not).
"""

from conftest import bench_scale

from repro.experiments import fig11_coverage_accuracy, format_table


def test_fig11_coverage_accuracy(benchmark):
    scale = bench_scale(n_workloads=12)
    data = benchmark.pedantic(lambda: fig11_coverage_accuracy(scale), rounds=1, iterations=1)
    rows = []
    for suite, policies in sorted(data["per_suite"].items()):
        rows.append((
            suite,
            f"{policies['permit']['coverage_delta_pct']:+.1f}%",
            f"{policies['dripper']['coverage_delta_pct']:+.1f}%",
            f"{policies['permit']['accuracy_delta_pct']:+.1f}%",
            f"{policies['dripper']['accuracy_delta_pct']:+.1f}%",
        ))
    print()
    print(format_table(
        ["suite", "cov(permit)", "cov(dripper)", "acc(permit)", "acc(dripper)"],
        rows, "Figure 11 — coverage / accuracy deltas over Discard PGC",
    ))
    overall = data["overall"]
    print("overall:", {k: {m: round(v, 2) for m, v in d.items()} for k, d in overall.items()})
    benchmark.extra_info["overall"] = overall

    # DRIPPER keeps most of Permit's coverage gain...
    assert overall["dripper"]["coverage_delta_pct"] >= 0.5 * overall["permit"]["coverage_delta_pct"]
    # ...while being clearly more accurate than Permit
    assert overall["dripper"]["accuracy_delta_pct"] > overall["permit"]["accuracy_delta_pct"]
