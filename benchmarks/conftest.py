"""Shared benchmark configuration.

Each bench reproduces one figure/table of the paper on a stratified workload
sample.  ``REPRO_BENCH_SCALE`` (env var, float) scales the sample size up or
down, e.g. ``REPRO_BENCH_SCALE=2 pytest benchmarks/`` doubles the sample.
"""

import os

from repro.experiments import Scale

_FACTOR = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def bench_scale(n_workloads: int = 10, warmup: int = 12_000, sim: int = 36_000, seed: int = 1) -> Scale:
    return Scale(
        n_workloads=max(4, int(n_workloads * _FACTOR)),
        warmup_instructions=warmup,
        sim_instructions=sim,
        seed=seed,
    )
