"""Figure 4: Permit PGC's MPKI impact, split by which static policy wins.

Paper shape: where Permit wins, dTLB/L1D/LLC MPKIs drop (dTLB more than
sTLB); where Discard wins, they rise.
"""

from conftest import bench_scale

from repro.experiments import fig4_mpki_split, format_table


def test_fig04_mpki_split(benchmark):
    scale = bench_scale(n_workloads=12)
    data = benchmark.pedantic(lambda: fig4_mpki_split(scale), rounds=1, iterations=1)
    for side in ("permit_wins", "discard_wins"):
        rows = [
            (w["workload"], f"{w['dtlb']:+.2f}", f"{w['stlb']:+.2f}", f"{w['l1d']:+.2f}", f"{w['llc']:+.2f}")
            for w in data[side]["workloads"]
        ]
        print()
        print(format_table(
            ["workload", "dTLB dMPKI", "sTLB dMPKI", "L1D dMPKI", "LLC dMPKI"],
            rows, f"Figure 4 — {side}",
        ))
        if data[side]["avg_delta"]:
            print("avg:", {k: round(v, 2) for k, v in data[side]["avg_delta"].items()})

    permit_avg = data["permit_wins"]["avg_delta"]
    discard_avg = data["discard_wins"]["avg_delta"]
    assert data["permit_wins"]["workloads"], "no Permit-winning workloads in sample"
    assert data["discard_wins"]["workloads"], "no Discard-winning workloads in sample"
    # where Permit wins, MPKIs drop on average
    assert permit_avg["l1d"] < 0
    assert permit_avg["dtlb"] < 0
    # dTLB is more sensitive than sTLB (smaller structure)
    assert permit_avg["dtlb"] <= permit_avg["stlb"] + 1e-9
    benchmark.extra_info["permit_wins_avg"] = {k: round(v, 3) for k, v in permit_avg.items()}
    benchmark.extra_info["discard_wins_avg"] = {k: round(v, 3) for k, v in discard_avg.items()}
