"""Figure 12: dTLB/sTLB/L1D/LLC MPKI impact of Permit & DRIPPER over Discard.

Paper shape: DRIPPER reduces all four MPKIs on average (dTLB more than
sTLB); Permit's curves have heavy positive (harmful) tails that DRIPPER cuts.
"""

from conftest import bench_scale

from repro.experiments import fig12_mpki_impact, format_distribution


def test_fig12_mpki(benchmark):
    scale = bench_scale(n_workloads=12)
    data = benchmark.pedantic(lambda: fig12_mpki_impact(scale), rounds=1, iterations=1)
    print()
    for policy in ("permit", "dripper"):
        print(f"{policy}:")
        for struct in ("dtlb", "stlb", "l1d", "llc"):
            print(f"  {struct:5s} dMPKI deciles: "
                  f"{format_distribution(data[policy]['sorted_deltas'][struct])}")
        print("  avg:", {k: round(v, 2) for k, v in data[policy]["avg_delta"].items()})
        benchmark.extra_info[f"{policy}_avg"] = {
            k: round(v, 3) for k, v in data[policy]["avg_delta"].items()
        }

    dripper = data["dripper"]["avg_delta"]
    # DRIPPER reduces MPKIs on average (all four structures)
    assert dripper["l1d"] < 0
    assert dripper["dtlb"] < 0
    assert dripper["stlb"] < 0
    assert dripper["llc"] < 0
    # DRIPPER cuts Permit's harmful tail: its worst-case increase is smaller
    assert max(data["dripper"]["sorted_deltas"]["l1d"]) <= max(data["permit"]["sorted_deltas"]["l1d"]) + 1e-9
    # NOTE: the paper additionally reports dTLB moving more than sTLB; with
    # our scaled-down footprints the two move together (EXPERIMENTS.md).
