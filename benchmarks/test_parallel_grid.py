"""Infrastructure bench: parallel grid execution vs the serial path.

Not a paper figure — this bench guards the execution layer every other
bench rides on: a (policy x workload) grid run on a process pool must
return bit-identical results to the serial path, and a warm result cache
must serve the whole grid without simulating anything.
"""

from conftest import bench_scale

from repro.experiments import ResultCache, format_table, run_policies
from repro.workloads import seen_workloads, stratified_sample

POLICIES = ["discard", "permit", "dripper"]
JOBS = 2


def test_parallel_grid_matches_serial(benchmark, tmp_path):
    scale = bench_scale(n_workloads=6)
    workloads = stratified_sample(seen_workloads(), scale.n_workloads, scale.seed)
    spec = scale.spec()

    serial = run_policies(workloads, POLICIES, base_spec=spec)
    parallel = benchmark.pedantic(
        lambda: run_policies(workloads, POLICIES, base_spec=spec, jobs=JOBS),
        rounds=1, iterations=1,
    )
    assert parallel == serial

    cache = ResultCache(tmp_path)
    run_policies(workloads, POLICIES, base_spec=spec, jobs=JOBS, cache=cache)
    rerun_cache = ResultCache(tmp_path)
    cached = run_policies(workloads, POLICIES, base_spec=spec, cache=rerun_cache)
    assert cached == serial
    assert rerun_cache.stats["misses"] == 0  # warm cache: nothing re-simulated

    rows = [(p, f"{serial[p][0].ipc:.4f}") for p in POLICIES]
    print()
    print(format_table(["policy", f"{workloads[0].name} IPC"], rows,
                       f"parallel grid (jobs={JOBS}) == serial, cache fully warm"))
    benchmark.extra_info["cells"] = len(POLICIES) * len(workloads)
