"""Table V: geomeans over seen / unseen / all (incl. non-intensive) workloads.

Paper shape: Permit negative everywhere (-0.8/-0.9/-0.6%); DRIPPER positive
everywhere (+1.7/+1.2/+0.4%), with smaller gains once non-intensive
workloads dilute the geomean — and no harm to the non-intensive set.
"""

from conftest import bench_scale

from repro.experiments import format_table, table5_all_workloads


def test_table05_all_workloads(benchmark):
    scale = bench_scale(n_workloads=10)
    data = benchmark.pedantic(lambda: table5_all_workloads(scale), rounds=1, iterations=1)
    rows = [
        (label, f"{vals['permit']:+.2f}%", f"{vals['dripper']:+.2f}%")
        for label, vals in data.items()
    ]
    print()
    print(format_table(["set", "Berti+Permit", "Berti+DRIPPER"], rows, "Table V"))
    for label, vals in data.items():
        benchmark.extra_info[label] = {k: round(v, 2) for k, v in vals.items()}

    assert data["seen"]["dripper"] > 0
    assert data["seen"]["dripper"] > data["seen"]["permit"]
    assert data["unseen"]["dripper"] > data["unseen"]["permit"]
    # DRIPPER must not harm non-intensive workloads
    assert data["non_intensive"]["dripper"] > -0.5
    assert data["all"]["dripper"] > data["all"]["permit"]
