"""Ablation: Berti timeliness models (count lookback vs measured latency).

The repo's default Berti approximates timeliness with an access-count
lookback; `berti-timely` follows the original's measured-latency rule.
Shape check: both respond to DRIPPER the same way (the page-cross question
is orthogonal to the timeliness model), and the measured-latency variant is
more conservative (fewer fills, equal-or-higher accuracy).
"""

from dataclasses import replace

from conftest import bench_scale

from repro.experiments import (
    average,
    format_table,
    geomean_speedup,
    run_many,
    speedup_percent,
)
from repro.experiments.runner import RunSpec
from repro.workloads import seen_workloads, stratified_sample


def run_variants(scale):
    workloads = stratified_sample(seen_workloads(), scale.n_workloads, scale.seed)
    out = {}
    for prefetcher in ("berti", "berti-timely"):
        spec = RunSpec(
            prefetcher=prefetcher,
            warmup_instructions=scale.warmup_instructions,
            sim_instructions=scale.sim_instructions,
        )
        base = run_many(workloads, replace(spec, policy="discard"))
        permit = run_many(workloads, replace(spec, policy="permit"))
        dripper = run_many(workloads, replace(spec, policy="dripper"))
        out[prefetcher] = {
            "permit_pct": speedup_percent(geomean_speedup(permit, base)),
            "dripper_pct": speedup_percent(geomean_speedup(dripper, base)),
            "avg_fills": average(r.prefetch_fills for r in permit),
            "avg_accuracy": average(r.prefetch_accuracy for r in permit),
        }
    return out


def test_ablation_berti_variants(benchmark):
    scale = bench_scale(n_workloads=8)
    data = benchmark.pedantic(lambda: run_variants(scale), rounds=1, iterations=1)
    rows = [
        (name, f"{v['permit_pct']:+.2f}%", f"{v['dripper_pct']:+.2f}%",
         f"{v['avg_fills']:.0f}", f"{v['avg_accuracy']:.2f}")
        for name, v in data.items()
    ]
    print()
    print(format_table(
        ["variant", "permit", "dripper", "fills/run", "accuracy"],
        rows, "Ablation — Berti timeliness models",
    ))
    for name, v in data.items():
        benchmark.extra_info[name] = {k: round(val, 2) for k, val in v.items()}

    # DRIPPER >= Permit holds under either timeliness model
    for name, v in data.items():
        assert v["dripper_pct"] >= v["permit_pct"] - 0.1, name
    # the measured-latency variant is the more conservative issuer
    assert data["berti-timely"]["avg_fills"] <= data["berti"]["avg_fills"]
