"""Figure 16: evaluation with mixed 4KB + 2MB pages.

Paper shape: DRIPPER (filtering at 4KB boundaries regardless of page size)
beats both Permit PGC and DRIPPER(filter@2MB); gains persist with large
pages (+2.2% over Discard, +1.3%... DRIPPER > filter@2MB by ~0.5%).
"""

from conftest import bench_scale

from repro.experiments import fig16_large_pages


def test_fig16_large_pages(benchmark):
    scale = bench_scale(n_workloads=12)
    data = benchmark.pedantic(lambda: fig16_large_pages(scale), rounds=1, iterations=1)
    print()
    print("Figure 16 — mixed 4KB/2MB pages, geomean over Discard PGC:")
    for key, value in data.items():
        print(f"  {key}: {value:+.2f}%")
    benchmark.extra_info.update({k: round(v, 2) for k, v in data.items()})

    assert data["dripper_pct"] > -0.3, "DRIPPER must not lose to Discard with large pages"
    assert data["dripper_pct"] > data["permit_pct"]
    assert data["dripper_pct"] >= data["dripper_filter2mb_pct"] - 0.2
