"""Figure 13: useful/useless page-cross prefetches per kilo-instruction.

Paper shape: DRIPPER's useful-PKI distribution matches Permit's (same hits)
while its useless-PKI distribution is concentrated near zero.
"""

from conftest import bench_scale

from repro.experiments import fig13_pgc_pki, format_distribution


def test_fig13_pki(benchmark):
    scale = bench_scale(n_workloads=14)
    data = benchmark.pedantic(lambda: fig13_pgc_pki(scale), rounds=1, iterations=1)
    print()
    for policy in ("permit", "dripper"):
        print(f"{policy}: useful PKI deciles  {format_distribution(data[policy]['useful_pki'])}")
        print(f"{policy}: useless PKI deciles {format_distribution(data[policy]['useless_pki'])}")
        print(f"{policy}: avg useful {data[policy]['avg_useful_pki']:.2f} "
              f"useless {data[policy]['avg_useless_pki']:.2f}")
        benchmark.extra_info[f"{policy}_avg_useful_pki"] = round(data[policy]["avg_useful_pki"], 3)
        benchmark.extra_info[f"{policy}_avg_useless_pki"] = round(data[policy]["avg_useless_pki"], 3)

    # DRIPPER keeps most useful page-cross prefetches...
    assert data["dripper"]["avg_useful_pki"] >= 0.6 * data["permit"]["avg_useful_pki"]
    # ...and issues far fewer useless ones
    assert data["dripper"]["avg_useless_pki"] < 0.5 * data["permit"]["avg_useless_pki"]
