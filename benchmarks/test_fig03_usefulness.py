"""Figure 3: useful vs useless page-cross prefetches under Permit PGC.

Paper shape: the full spectrum appears (some workloads ~100% useful, some
~100% useless), and the average is ~50/50 — state-of-the-art prefetchers are
not very accurate across pages.
"""

from conftest import bench_scale

from repro.experiments import fig3_usefulness, format_table


def test_fig03_usefulness(benchmark):
    scale = bench_scale(n_workloads=13)
    data = benchmark.pedantic(lambda: fig3_usefulness(scale), rounds=1, iterations=1)
    for prefetcher, block in data.items():
        rows = [(n, f"{u:.0f}%", f"{x:.0f}%") for n, u, x in block["per_workload_pct"]]
        print()
        print(format_table(["workload", "useful", "useless"], rows, f"Figure 3 — {prefetcher}"))
        print(f"average useful: {block['avg_useful_pct']:.1f}%  useless: {block['avg_useless_pct']:.1f}%")
        benchmark.extra_info[f"{prefetcher}_avg_useful_pct"] = round(block["avg_useful_pct"], 1)

    for prefetcher, block in data.items():
        useful = [u for _, u, _ in block["per_workload_pct"]]
        assert any(u > 80 for u in useful), f"{prefetcher}: no mostly-useful workload"
        assert any(u < 20 for u in useful), f"{prefetcher}: no mostly-useless workload"
        assert 20 <= block["avg_useful_pct"] <= 80, (
            f"{prefetcher}: average usefulness {block['avg_useful_pct']:.0f}% "
            "should sit between the extremes (paper: ~50%)"
        )
