"""Figure 19: 8-core mixes — weighted-speedup distribution over Discard PGC.

Paper shape: DRIPPER improves geomean weighted speedup over both Discard
(+2.0%) and Permit (+3.3%) across mixes.

Known deviation (EXPERIMENTS.md): at our mix scale DRIPPER tracks Permit
within ~2pp instead of clearly beating it — per-core IPCs under DRIPPER are
mostly higher, but the isolation-normalised weighted-speedup metric rewards
Permit's degraded isolation baselines on marginal-accuracy workloads.  The
bench asserts the robust part of the claim.
"""

from repro.experiments import fig19_multicore, format_distribution


def test_fig19_multicore(benchmark):
    data = benchmark.pedantic(
        lambda: fig19_multicore(n_mixes=4, warmup_instructions=6_000, sim_instructions=18_000),
        rounds=1, iterations=1,
    )
    print()
    for policy, block in data.items():
        print(f"Figure 19 — {policy}: geomean {block['geomean_pct']:+.2f}%, "
              f"per-mix {format_distribution(block['per_mix_pct'], buckets=3)}")
        benchmark.extra_info[f"{policy}_geomean_pct"] = round(block["geomean_pct"], 2)

    # robust claims at this scale: DRIPPER stays within noise of Permit on
    # the weighted-speedup metric and never collapses against Discard
    assert data["dripper"]["geomean_pct"] > data["permit"]["geomean_pct"] - 2.5
    assert data["dripper"]["geomean_pct"] > -8.0
