"""Ablation: update-buffer sizing (vUB / pUB of Table III).

Design-choice check: the 4-entry vUB is what bootstraps the filter out of
the discard-everything state, and the 128-entry pUB provides the
negative-feedback path.  Shrinking either should not *gain* performance;
starving vUB should hurt page-cross-friendly workloads.
"""

from dataclasses import replace

from conftest import bench_scale

from repro.core.dripper import dripper_config
from repro.core.filter import PerceptronFilter
from repro.experiments import format_table, geomean_speedup, run_many, speedup_percent
from repro.experiments.runner import RunSpec
from repro.workloads import seen_workloads, stratified_sample


def run_ablation(scale):
    from repro.cpu.simulator import simulate

    workloads = stratified_sample(seen_workloads(), scale.n_workloads, scale.seed)
    spec = RunSpec(
        prefetcher="berti",
        warmup_instructions=scale.warmup_instructions,
        sim_instructions=scale.sim_instructions,
    )
    base = run_many(workloads, replace(spec, policy="discard"))
    out = {}
    for vub, pub in ((1, 128), (4, 128), (32, 128), (4, 8), (4, 512)):
        config = replace(dripper_config("berti"), vub_entries=vub, pub_entries=pub)
        results = []
        for workload in workloads:
            cfg = replace(
                spec.config_for(workload),
                policy_factory=lambda: PerceptronFilter(config, name=f"v{vub}p{pub}"),
            )
            results.append(simulate(workload, cfg))
        out[f"vUB={vub:<3d} pUB={pub}"] = speedup_percent(geomean_speedup(results, base))
    return out


def test_ablation_buffers(benchmark):
    scale = bench_scale(n_workloads=8)
    data = benchmark.pedantic(lambda: run_ablation(scale), rounds=1, iterations=1)
    print()
    print(format_table(
        ["configuration", "geomean vs Discard"],
        [(k, f"{v:+.2f}%") for k, v in data.items()],
        "Ablation — update buffer sizing",
    ))
    benchmark.extra_info.update({k: round(v, 2) for k, v in data.items()})
    # the paper's configuration must be a sane point: positive gain
    assert data["vUB=4   pUB=128"] > 0
