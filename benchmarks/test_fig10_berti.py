"""Figure 10: Berti case study — per-workload s-curves + per-suite geomeans.

Paper shape: DRIPPER beats both static policies for most workloads
(geomean +1.7% over Discard, +2.5% over Permit); Permit helps a subset but
hurts most.
"""

from conftest import bench_scale

from repro.experiments import fig10_berti_breakdown, format_distribution, format_table


def test_fig10_berti(benchmark):
    scale = bench_scale(n_workloads=14)
    data = benchmark.pedantic(lambda: fig10_berti_breakdown(scale), rounds=1, iterations=1)
    print()
    for policy in ("permit", "dripper"):
        print(f"{policy} s-curve (deciles, % over Discard): "
              f"{format_distribution(data['s_curves_pct'][policy])}")
    rows = [
        (suite, f"{vals.get('permit', 0):+.2f}%", f"{vals.get('dripper', 0):+.2f}%")
        for suite, vals in sorted(data["per_suite_pct"].items())
    ]
    print(format_table(["suite", "permit", "dripper"], rows, "Figure 10 — per-suite geomean"))
    print(f"overall: permit {data['overall_pct']['permit']:+.2f}%, "
          f"dripper {data['overall_pct']['dripper']:+.2f}%")
    benchmark.extra_info["overall"] = {k: round(v, 2) for k, v in data["overall_pct"].items()}

    assert data["overall_pct"]["dripper"] > data["overall_pct"]["permit"]
    assert data["overall_pct"]["dripper"] > 0
    # Permit helps some workloads and hurts others (spread in the s-curve)
    curve = data["s_curves_pct"]["permit"]
    assert curve[0] < 0 < curve[-1]
