"""Figure 15: DRIPPER vs DRIPPER-SF (system features only).

Paper shape: full DRIPPER beats DRIPPER-SF (by ~0.9% geomean) because the
program feature adds per-delta discrimination the system features lack.
"""

from conftest import bench_scale

from repro.experiments import fig15_dripper_sf


def test_fig15_dripper_sf(benchmark):
    scale = bench_scale(n_workloads=10)
    data = benchmark.pedantic(lambda: fig15_dripper_sf(scale), rounds=1, iterations=1)
    print()
    print(f"Figure 15 — DRIPPER {data['dripper_pct']:+.2f}% vs DRIPPER-SF {data['dripper_sf_pct']:+.2f}%")
    benchmark.extra_info.update({k: round(v, 2) for k, v in data.items()})

    assert data["dripper_pct"] >= data["dripper_sf_pct"] - 0.1
    assert data["dripper_pct"] > 0
