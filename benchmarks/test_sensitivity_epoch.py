"""Sensitivity: adaptive-thresholding epoch length.

The paper's scheme collects statistics per epoch (Figure 8) but does not
publish the epoch length.  This sweep shows the scheme is robust across a
wide range — the property that justifies our choice of default.
"""

from conftest import bench_scale

from repro.experiments import format_table
from repro.experiments.runner import RunSpec
from repro.experiments.sweep import sweep_epoch_length
from repro.workloads import seen_workloads, stratified_sample

EPOCH_LENGTHS = (512, 1024, 2048, 4096, 8192)


def test_sensitivity_epoch_length(benchmark):
    scale = bench_scale(n_workloads=6)
    workloads = stratified_sample(seen_workloads(), scale.n_workloads, scale.seed)
    spec = RunSpec(
        prefetcher="berti",
        warmup_instructions=scale.warmup_instructions,
        sim_instructions=scale.sim_instructions,
    )
    data = benchmark.pedantic(
        lambda: sweep_epoch_length(workloads, EPOCH_LENGTHS, base_spec=spec),
        rounds=1, iterations=1,
    )
    rows = [(epoch, f"{pct:+.2f}%") for epoch, pct in data.items()]
    print()
    print(format_table(["epoch instructions", "dripper vs discard"], rows,
                       "Sensitivity — epoch length"))
    benchmark.extra_info.update({str(k): round(v, 2) for k, v in data.items()})

    values = list(data.values())
    assert max(values) - min(values) < 3.0, "gains should be robust to epoch length"
    # hostile-leaning samples can sit slightly below zero across the sweep;
    # the robustness claim is about the spread, not the absolute level
    assert all(v > -1.5 for v in values)
