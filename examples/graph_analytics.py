#!/usr/bin/env python3
"""Graph analytics case study: why page-cross prefetching is graph-shaped.

Runs the GAP-style CSR traversals on a road network (high locality: node
order ~ memory order) and a web graph (frontier jumps: offset pages visited
out of order), showing that the *same algorithm* flips from page-cross
friendly to page-cross hostile with the input graph — and that DRIPPER
adapts to both.

Usage::

    python examples/graph_analytics.py
"""

from repro import DiscardPgc, PermitPgc, SimConfig, by_name, make_dripper, simulate


def run(workload_name: str, factory) -> "tuple[float, int, int]":
    config = SimConfig(
        prefetcher="berti",
        policy_factory=factory,
        warmup_instructions=15_000,
        sim_instructions=45_000,
    )
    r = simulate(by_name(workload_name), config)
    return r.ipc, r.pgc_useful, r.pgc_useless


def main() -> None:
    print(f"{'workload':<12} {'policy':<12} {'IPC':>6} {'vs discard':>11} "
          f"{'pgc useful':>11} {'pgc useless':>12}")
    for graph in ("cc.road", "cc.web", "pr.road", "pr.web"):
        base_ipc = None
        for label, factory in (
            ("discard", DiscardPgc),
            ("permit", PermitPgc),
            ("dripper", lambda: make_dripper("berti")),
        ):
            ipc, useful, useless = run(graph, factory)
            if base_ipc is None:
                base_ipc = ipc
            print(f"{graph:<12} {label:<12} {ipc:6.3f} {100 * (ipc / base_ipc - 1):+10.1f}% "
                  f"{useful:11d} {useless:12d}")
        print()
    print("Road graphs: crossing pages follows the traversal -> Permit wins, DRIPPER follows.")
    print("Web graphs: frontier jumps make crossings guesses -> Discard wins, DRIPPER follows.")


if __name__ == "__main__":
    main()
