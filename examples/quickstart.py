#!/usr/bin/env python3
"""Quickstart: compare page-cross policies on one workload.

Runs Berti on the `astar`-like workload under the three headline policies —
Discard PGC (the academic default), Permit PGC (what vendors may do), and
DRIPPER (the paper's filter) — and prints the metrics the paper reports.

Usage::

    python examples/quickstart.py [workload-name]
"""

import sys

from repro import DiscardPgc, PermitPgc, SimConfig, by_name, make_dripper, simulate


def main() -> None:
    workload_name = sys.argv[1] if len(sys.argv) > 1 else "astar"
    workload = by_name(workload_name)
    print(f"workload: {workload.name} (suite {workload.suite})")
    print(f"{'policy':<16} {'IPC':>6} {'L1D MPKI':>9} {'dTLB MPKI':>10} "
          f"{'pgc issued':>10} {'useful':>7} {'useless':>8}")

    baseline_ipc = None
    for label, factory in (
        ("discard-pgc", DiscardPgc),
        ("permit-pgc", PermitPgc),
        ("dripper", lambda: make_dripper("berti")),
    ):
        config = SimConfig(
            prefetcher="berti",
            policy_factory=factory,
            warmup_instructions=20_000,
            sim_instructions=60_000,
        )
        r = simulate(workload, config)
        if baseline_ipc is None:
            baseline_ipc = r.ipc
        delta = 100 * (r.ipc / baseline_ipc - 1)
        print(f"{label:<16} {r.ipc:6.3f} {r.l1d_mpki:9.1f} {r.dtlb_mpki:10.2f} "
              f"{r.pgc_issued:10d} {r.pgc_useful:7d} {r.pgc_useless:8d}  ({delta:+.1f}%)")

    print("\nExpected shape: DRIPPER matches or beats the better static policy —")
    print("it issues the useful page-cross prefetches and discards the useless ones.")


if __name__ == "__main__":
    main()
