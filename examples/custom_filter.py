#!/usr/bin/env python3
"""Build your own Page-Cross Filter with the MOKA framework.

DRIPPER is one point in MOKA's design space.  This example assembles a
custom filter — different program features, different system features, a
custom adaptive-threshold configuration — and compares it against DRIPPER,
demonstrating the framework API a microarchitect would actually use.

Usage::

    python examples/custom_filter.py
"""

from repro import SimConfig, by_name, make_dripper, simulate
from repro.core import DiscardPgc, FilterConfig, PerceptronFilter, ThresholdConfig


def build_custom_filter() -> PerceptronFilter:
    """A richer (more storage-hungry) filter than DRIPPER."""
    config = FilterConfig(
        # two program features instead of DRIPPER's one
        program_features=("Delta", "PC^(VA>>12)"),
        # add cache-pressure awareness on top of the TLB features
        system_features=("sTLB MPKI", "sTLB Miss Rate", "LLC Miss Rate"),
        weight_table_entries=1024,
        weight_bits=6,
        vub_entries=8,
        pub_entries=256,
        adaptive=True,
        threshold=ThresholdConfig(t_medium=3, t_high=10, accuracy_low=0.3),
    )
    return PerceptronFilter(config, name="custom")


def main() -> None:
    custom = build_custom_filter()
    print(f"custom filter storage: {custom.storage_kib():.2f} KiB "
          f"(DRIPPER: {make_dripper('berti').storage_kib():.2f} KiB)")
    print()
    print(f"{'workload':<14} {'discard':>8} {'dripper':>8} {'custom':>8}")
    for name in ("libquantum", "sphinx3", "gcc", "cc.road"):
        ipcs = {}
        for label, factory in (
            ("discard", DiscardPgc),
            ("dripper", lambda: make_dripper("berti")),
            ("custom", build_custom_filter),
        ):
            config = SimConfig(
                prefetcher="berti",
                policy_factory=factory,
                warmup_instructions=12_000,
                sim_instructions=36_000,
            )
            ipcs[label] = simulate(by_name(name), config).ipc
        print(f"{name:<14} {ipcs['discard']:8.3f} {ipcs['dripper']:8.3f} {ipcs['custom']:8.3f}")
    print()
    print("More features and storage buy accuracy on some workloads; Table III's")
    print("point (DRIPPER) is the paper's cost/benefit sweet spot.")


if __name__ == "__main__":
    main()
