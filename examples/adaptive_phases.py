#!/usr/bin/env python3
"""Watch DRIPPER adapt across execution phases.

Builds a workload that alternates between a page-cross-friendly stream and a
page-cross-hostile tiled pattern *using the same load PCs* — the regime
where static policies and PC-based filters (PPF) fail — and shows DRIPPER's
behaviour per phase: issue rate high in friendly phases, near zero in
hostile ones, with the adaptive threshold moving in between.

Usage::

    python examples/adaptive_phases.py
"""

from repro import DiscardPgc, PermitPgc, SimConfig, make_dripper, make_ppf_dthr, simulate
from repro.workloads.patterns import Alternating
from repro.workloads.synthetic import SyntheticWorkload


def build_workload() -> SyntheticWorkload:
    return SyntheticWorkload(
        "phase-flipper", "DEMO", 11,
        [(lambda: Alternating(0, footprint_pages=4096, period=2_000), 1 << 30)],
        mean_gap=2.5,
    )


def main() -> None:
    workload = build_workload()
    print("workload: alternating friendly/hostile phases, shared load PCs\n")
    print(f"{'policy':<12} {'IPC':>6} {'vs discard':>11} {'pgc issued':>11} "
          f"{'useful':>7} {'useless':>8} {'accuracy':>9}")
    base_ipc = None
    dripper = None
    for label, factory in (
        ("discard", DiscardPgc),
        ("permit", PermitPgc),
        ("ppf+dthr", make_ppf_dthr),
        ("dripper", lambda: make_dripper("berti")),
    ):
        policy = factory()
        if label == "dripper":
            dripper = policy
        config = SimConfig(
            prefetcher="berti",
            policy_factory=lambda: policy,
            warmup_instructions=16_000,
            sim_instructions=60_000,
        )
        r = simulate(workload, config)
        if base_ipc is None:
            base_ipc = r.ipc
        print(f"{label:<12} {r.ipc:6.3f} {100 * (r.ipc / base_ipc - 1):+10.1f}% "
              f"{r.pgc_issued:11d} {r.pgc_useful:7d} {r.pgc_useless:8d} {r.pgc_accuracy:9.2f}")

    if dripper is not None:
        from repro.core.introspect import format_filter_state

        print("\n" + format_filter_state(dripper))
    print("\nBoth perceptron filters track the phase flips through vUB/pUB")
    print("retraining, keeping most useful page-cross prefetches while cutting")
    print("the useless ones ~4x vs Permit.  DRIPPER's per-delta weights give it")
    print("the edge (higher accuracy, fewer useless) because the phases differ")
    print("in delta signature — the property Table II's feature choice targets.")


if __name__ == "__main__":
    main()
