#!/usr/bin/env python3
"""8-core mix: page-cross filtering under shared-resource contention.

Builds one 8-core mix from the seen set, runs it under Discard / Permit /
DRIPPER, and reports the weighted speedup (Section IV-A2 methodology):
useless page-cross traffic from one core steals LLC capacity and DRAM
bandwidth from all of them, which is why filtering matters even more in
multi-core (Figure 19).

Usage::

    python examples/multicore_mix.py [mix-index]
"""

import sys

from repro import DiscardPgc, PermitPgc, SimConfig, make_dripper, simulate_mix
from repro.cpu.multicore import isolation_ipc
from repro.workloads import make_mixes


def main() -> None:
    mix_index = int(sys.argv[1]) if len(sys.argv) > 1 else 0
    mix = make_mixes(mix_index + 1, 8, seed=42)[mix_index]
    print("mix:", ", ".join(w.name for w in mix))

    wipcs = {}
    for label, factory in (
        ("discard", DiscardPgc),
        ("permit", PermitPgc),
        ("dripper", lambda: make_dripper("berti")),
    ):
        config = SimConfig(
            prefetcher="berti",
            policy_factory=factory,
            warmup_instructions=6_000,
            sim_instructions=18_000,
        )
        result = simulate_mix(mix, config)
        isolation = [isolation_ipc(w, config, cores=8) for w in mix]
        wipcs[label] = result.weighted_ipc(isolation)
        per_core = " ".join(f"{r.ipc:.2f}" for r in result.results)
        print(f"{label:<8} weighted IPC {wipcs[label]:.3f}   per-core IPC: {per_core}")

    for label in ("permit", "dripper"):
        print(f"{label} weighted speedup over discard: "
              f"{100 * (wipcs[label] / wipcs['discard'] - 1):+.2f}%")


if __name__ == "__main__":
    main()
