#!/usr/bin/env python3
"""Trace files end-to-end: snapshot, inspect, replay, export.

Shows the trace tooling a user needs to work with captured workloads:

1. snapshot a registry workload into the native binary trace format;
2. inspect its record mix (loads/stores/branches, page-touch profile);
3. replay it under two page-cross policies and confirm determinism;
4. export the results to CSV for external analysis.

The same flow works for imported ChampSim traces
(`python -m repro convert --champsim trace.bin --out trace.rptr`).

Usage::

    python examples/trace_study.py [workload-name]
"""

import sys
import tempfile
from collections import Counter
from pathlib import Path

from repro import DiscardPgc, PermitPgc, SimConfig, by_name, simulate
from repro.experiments.export import write_csv
from repro.workloads import FileWorkload, read_trace, snapshot_workload
from repro.workloads.trace import BRANCH, LOAD, STORE


def main() -> None:
    workload_name = sys.argv[1] if len(sys.argv) > 1 else "libquantum"
    workdir = Path(tempfile.mkdtemp(prefix="repro-trace-"))
    trace_path = workdir / f"{workload_name}.rptr"

    count = snapshot_workload(by_name(workload_name), trace_path, instructions=60_000)
    print(f"snapshot: {count} records -> {trace_path} ({trace_path.stat().st_size} bytes)")

    _, records = read_trace(trace_path)
    kinds = Counter()
    pages = set()
    instructions = 0
    for pc, vaddr, flags, gap in records:
        kinds["loads" if flags & LOAD else "stores"] += 1
        if flags & BRANCH:
            kinds["branches"] += 1
        pages.add(vaddr >> 12)
        instructions += 1 + gap
    print(f"inspect: {instructions} instructions, {kinds['loads']} loads, "
          f"{kinds['stores']} stores, {kinds['branches']} branches, "
          f"{len(pages)} distinct 4KB pages touched")

    results = []
    replayed = FileWorkload(trace_path)
    for label, factory in (("discard", DiscardPgc), ("permit", PermitPgc)):
        config = SimConfig(
            prefetcher="berti", policy_factory=factory,
            warmup_instructions=15_000, sim_instructions=40_000,
        )
        first = simulate(replayed, config)
        second = simulate(replayed, config)
        assert first.ipc == second.ipc, "trace replay must be deterministic"
        results.append(first)
        print(f"replay [{label}]: IPC {first.ipc:.3f}, "
              f"pgc issued {first.pgc_issued}, useful {first.pgc_useful}")

    csv_path = workdir / "results.csv"
    write_csv(results, csv_path)
    print(f"export: {csv_path}")


if __name__ == "__main__":
    main()
