#!/usr/bin/env python3
"""Feature engineering with MOKA: from candidate list to a tuned filter.

Reproduces the paper's design loop (Section III-D3) in miniature:

1. score a candidate set of program/system features as single-feature
   filters over a small workload sample;
2. run the greedy selection to build a combined feature set;
3. assemble a filter from the selection, including a prefetcher-specialized
   feature (the Section III-D1 extension), and inspect what it learned.

Usage::

    python examples/feature_engineering.py
"""

from repro.core.filter import FilterConfig, PerceptronFilter
from repro.core.introspect import format_filter_state
from repro.core.selection import select_features
from repro.core.specialized import SPECIALIZED_FEATURES
from repro.cpu.simulator import SimConfig, simulate
from repro.workloads import seen_workloads, stratified_sample

CANDIDATE_PROGRAM = ("Delta", "PC^Delta", "PC", "VA>>12", "CacheLineOffset")
CANDIDATE_SYSTEM = ("sTLB MPKI", "sTLB Miss Rate", "LLC Miss Rate")


def main() -> None:
    workloads = stratified_sample(seen_workloads(), 6, seed=5)
    print("sample:", ", ".join(w.name for w in workloads))

    report = select_features(
        "berti", workloads,
        program_candidates=CANDIDATE_PROGRAM,
        system_candidates=CANDIDATE_SYSTEM,
        warmup_instructions=8_000,
        sim_instructions=24_000,
    )
    print("\nsingle-feature ranking (geomean IPC vs Discard PGC):")
    for score in report.scores:
        kind = "system " if score.is_system else "program"
        print(f"  {kind} {score.name:18s} {100 * (score.speedup - 1):+.2f}%")
    print(f"selected: program={report.selected_program} system={report.selected_system} "
          f"({100 * (report.final_speedup - 1):+.2f}%)")

    # build a filter from the selection, adding a degree-aware specialized
    # feature on top (prefetchers in this repo tag requests with their
    # degree index via request.meta)
    config = FilterConfig(
        program_features=tuple(report.selected_program)
        + (SPECIALIZED_FEATURES["Delta+DegreeIndex"],),
        system_features=tuple(report.selected_system),
    )
    custom = PerceptronFilter(config, name="engineered")
    sim = SimConfig(
        prefetcher="berti",
        policy_factory=lambda: custom,
        warmup_instructions=10_000,
        sim_instructions=30_000,
    )
    result = simulate(workloads[0], sim)
    print(f"\ntrial run on {workloads[0].name}: IPC {result.ipc:.3f}, "
          f"pgc {result.pgc_issued} issued / {result.pgc_discarded} discarded")
    print("\n" + format_filter_state(custom))


if __name__ == "__main__":
    main()
